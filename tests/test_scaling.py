"""Tests for load-change detection and adaptation (Sec. 4 / Fig. 16)."""

import pytest

from repro.core.evaluator import ConfigurationEvaluator, EvaluationRecord
from repro.core.objective import RibbonObjective
from repro.core.optimizer import RibbonOptimizer
from repro.core.scaling import LoadAdaptiveRibbon, LoadChangeDetector
from repro.core.search_space import SearchSpace
from repro.simulator.pool import PoolConfiguration
from repro.workload.trace import TraceGenerator
from repro.workload.arrival import PoissonArrivalProcess
from repro.workload.batch import HeavyTailLogNormalBatch
from tests.conftest import make_toy_model


def record(counts, rate, queue, cost=1.0):
    return EvaluationRecord(
        pool=PoolConfiguration(("g4dn", "t3"), counts),
        qos_rate=rate,
        cost_per_hour=cost,
        objective=rate,
        meets_qos=rate >= 0.95,
        sample_index=0,
        p99_ms=10.0,
        mean_queue_length=queue,
    )


class TestDetector:
    def test_flags_collapsed_rate_with_growing_queue(self):
        det = LoadChangeDetector(rate_drop=0.05, queue_factor=1.0)
        assert det.load_changed(record((2, 2), rate=0.5, queue=50.0), 0.95)

    def test_ignores_rate_drop_without_queue_growth(self):
        det = LoadChangeDetector()
        assert not det.load_changed(record((2, 2), rate=0.5, queue=0.1), 0.95)

    def test_ignores_healthy_config(self):
        det = LoadChangeDetector()
        assert not det.load_changed(record((2, 2), rate=0.99, queue=0.0), 0.95)

    def test_invalid_params(self):
        with pytest.raises(ValueError):
            LoadChangeDetector(rate_drop=0.0)


class TestSetS:
    def test_set_s_collects_no_better_configs(self):
        best = record((3, 0), rate=0.99, queue=0.0)
        history = (
            best,
            record((2, 0), rate=0.80, queue=1.0),
            record((3, 1), rate=0.995, queue=0.0),
            record((1, 2), rate=0.99, queue=0.0),
        )
        s = LoadAdaptiveRibbon.build_set_s(history, best)
        counts = {r.pool.counts for r in s}
        assert counts == {(2, 0), (1, 2)}  # rate <= best's, excluding best

    def test_linear_estimation_rule(self):
        # Paper example: A 99.9% -> 33.3% means B at 90% estimates 30%.
        best = record((3, 0), rate=0.999, queue=0.0)
        b = record((2, 0), rate=0.90, queue=0.0)
        est = LoadAdaptiveRibbon.estimate_new_rates([b], best, 0.333)
        assert est[0][1] == pytest.approx(0.30, abs=1e-3)

    def test_estimates_clamped(self):
        best = record((3, 0), rate=0.5, queue=0.0)
        b = record((2, 0), rate=0.5, queue=0.0)
        est = LoadAdaptiveRibbon.estimate_new_rates([b], best, 1.0)
        assert 0.0 <= est[0][1] <= 1.0

    def test_zero_rate_best_gives_zero_estimates(self):
        best = record((3, 0), rate=0.0, queue=0.0)
        b = record((2, 0), rate=0.0, queue=0.0)
        est = LoadAdaptiveRibbon.estimate_new_rates([b], best, 0.0)
        assert est[0][1] == 0.0


@pytest.fixture(scope="module")
def load_ctx():
    model = make_toy_model(arrival_rate_qps=400.0)
    space = SearchSpace(("g4dn", "t3"), (6, 8))
    objective = RibbonObjective(space, qos_rate_target=0.95)

    def gen(load, seed=5):
        return TraceGenerator(
            PoissonArrivalProcess(model.arrival_rate_qps * load),
            HeavyTailLogNormalBatch(
                model.batch_median, model.batch_sigma, model.max_batch
            ),
            seed=seed,
        ).generate(600)

    before = ConfigurationEvaluator(model, gen(1.0), objective)
    after = ConfigurationEvaluator(model, gen(1.5), objective)
    return model, objective, before, after


class TestLoadAdaptation:
    def test_full_scenario(self, load_ctx):
        _, _, before, after = load_ctx
        adaptive = LoadAdaptiveRibbon(
            lambda: RibbonOptimizer(max_samples=30, seed=0)
        )
        outcome = adaptive.run(before, after)
        assert outcome.result_before.best is not None
        assert outcome.result_after.best is not None
        # The new optimum costs more than the old (heavier load).
        assert outcome.cost_ratio_after_vs_before > 1.0
        # The previous optimum is detected as failing under the new load.
        assert outcome.detected
        assert outcome.n_pseudo >= 0

    def test_timeline_structure(self, load_ctx):
        _, _, before, after = load_ctx
        outcome = LoadAdaptiveRibbon(
            lambda: RibbonOptimizer(max_samples=25, seed=1)
        ).run(before.fork(before.trace), after.fork(after.trace))
        tl = outcome.timeline()
        phases = {p.phase for p in tl}
        assert phases == {"before", "after"}
        for pt in tl:
            assert pt.violation_percent >= 0.0
            assert pt.cost_normalized >= 0.0

    def test_warm_start_flag_off_skips_pseudo(self, load_ctx):
        _, _, before, after = load_ctx
        outcome = LoadAdaptiveRibbon(
            lambda: RibbonOptimizer(max_samples=20, seed=2), warm_start=False
        ).run(before.fork(before.trace), after.fork(after.trace))
        assert outcome.n_pseudo == 0
        assert not outcome.warm_start
