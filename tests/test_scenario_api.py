"""The declarative Scenario API and the strategy registry.

Covers the redesign contract: registry round-trips for all five built-in
strategies, front-loaded scenario validation with actionable errors,
equivalence of ``Scenario.run`` with both :func:`repro.quick_search` and
the previously hand-wired six-step pipeline, and deterministic multi-seed
sweeps (sequential == parallel).
"""

import json

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import (
    ConfigurationEvaluator,
    RibbonObjective,
    RibbonOptimizer,
    estimate_instance_bounds,
    get_model,
    quick_search,
    trace_for_model,
)
from repro.api import (
    EvaluationBudget,
    PoolSpec,
    QoSSpec,
    Scenario,
    ScenarioError,
    ScenarioRunner,
    UnknownStrategyError,
    WorkloadSpec,
    available_strategies,
    make_strategy,
    register_strategy,
    runner_for,
    strategy_class,
)
from repro.api import registry as registry_module
from repro.baselines import ExhaustiveSearch, HillClimb, RandomSearch, ResponseSurface
from repro.core.strategy import Budget, SearchStrategy

BUILTIN_STRATEGIES = {
    "ribbon": RibbonOptimizer,
    "hill-climb": HillClimb,
    "random": RandomSearch,
    "rsm": ResponseSurface,
    "exhaustive": ExhaustiveSearch,
}


class TestRegistry:
    def test_all_five_builtins_available(self):
        assert set(BUILTIN_STRATEGIES) <= set(available_strategies())

    @pytest.mark.parametrize("name", sorted(BUILTIN_STRATEGIES))
    def test_round_trip(self, name):
        strat = make_strategy(name, max_samples=7, seed=3)
        assert isinstance(strat, BUILTIN_STRATEGIES[name])
        assert strat.max_samples == 7
        assert strat.seed == 3

    def test_name_normalization_and_aliases(self):
        assert strategy_class("RIBBON") is RibbonOptimizer
        assert strategy_class("bo") is RibbonOptimizer
        assert strategy_class("Hill_Climb") is HillClimb
        assert strategy_class("response surface") is ResponseSurface
        assert strategy_class("ground-truth") is ExhaustiveSearch

    def test_unknown_name_lists_available(self):
        with pytest.raises(UnknownStrategyError, match="ribbon"):
            make_strategy("simulated-annealing")

    def test_strategy_kwargs_reach_constructor(self):
        strat = make_strategy("ribbon", max_samples=9, seed=1, patience=None)
        assert strat.patience is None

    def test_register_custom_strategy(self):
        @register_strategy("unit-greedy", "ug")
        class UnitGreedy(RandomSearch):
            name = "UNIT"

        try:
            assert "unit-greedy" in available_strategies()
            strat = make_strategy("ug", max_samples=3, seed=1)
            assert isinstance(strat, UnitGreedy)
            # Re-registering the same class is idempotent...
            register_strategy("unit-greedy")(UnitGreedy)
            # ...but stealing the name for another class is an error.
            with pytest.raises(ValueError, match="already registered"):
                register_strategy("unit-greedy")(HillClimb)
        finally:
            registry_module._STRATEGIES.pop("unit-greedy", None)
            registry_module._ALIASES.pop("ug", None)

    def test_register_rejects_non_strategy(self):
        with pytest.raises(TypeError):
            register_strategy("not-a-strategy")(object)

    def test_register_alias_matching_own_name_is_noop(self):
        # 'hill_climb' canonicalizes to the primary name itself; this must
        # not raise at (re-)registration time.
        register_strategy("hill-climb", "hill_climb")(HillClimb)
        assert strategy_class("hill_climb") is HillClimb

    def test_register_cannot_hijack_alias(self):
        # "bo" is an alias of ribbon; claiming it as a primary name must
        # fail just like claiming "ribbon" itself would.
        with pytest.raises(ValueError, match="already registered"):
            register_strategy("bo")(HillClimb)
        assert strategy_class("bo") is RibbonOptimizer


class TestBudgetPromotion:
    def test_budget_is_public(self):
        import repro
        import repro.core

        assert repro.Budget is Budget
        assert repro.core.Budget is Budget

    def test_deprecated_alias_warns_and_resolves(self):
        import repro.core.strategy as strategy_module

        with pytest.warns(DeprecationWarning, match="_Budget is deprecated"):
            alias = strategy_module._Budget
        assert alias is Budget

    def test_deprecated_alias_warns_on_from_import(self):
        # An actual from-import statement (IMPORT_FROM falls back to the
        # module __getattr__ for missing names), not a getattr spelling.
        ns: dict = {}
        with pytest.warns(DeprecationWarning, match="_Budget is deprecated"):
            exec("from repro.core.strategy import _Budget", ns)
        assert ns["_Budget"] is Budget

    def test_unknown_attribute_still_raises(self):
        import repro.core.strategy as strategy_module

        with pytest.raises(AttributeError, match="no attribute"):
            strategy_module._NoSuchBudget


class TestScenarioValidation:
    def test_unknown_model_is_actionable(self):
        with pytest.raises(ScenarioError, match="MT-WND"):
            Scenario("BERT-Large")

    def test_model_name_is_canonicalized(self):
        assert Scenario("mt-wnd").model == "MT-WND"

    def test_empty_pool(self):
        with pytest.raises(ScenarioError, match="empty"):
            Scenario("MT-WND", pool=PoolSpec(families=()))

    def test_duplicate_families(self):
        with pytest.raises(ScenarioError, match="g4dn"):
            Scenario("MT-WND", pool=PoolSpec(families=("g4dn", "c5", "g4dn")))

    def test_unprofiled_family(self):
        with pytest.raises(ScenarioError, match="no latency profile"):
            Scenario("MT-WND", pool=PoolSpec(families=("g4dn", "p4d")))

    def test_non_positive_qos_latency(self):
        with pytest.raises(ScenarioError, match="latency_target_ms"):
            Scenario("MT-WND", qos=QoSSpec(latency_target_ms=0.0))

    @pytest.mark.parametrize("rate", [0.0, -0.5, 1.5])
    def test_bad_qos_rate_target(self, rate):
        with pytest.raises(ScenarioError, match="rate_target"):
            Scenario("MT-WND", qos=QoSSpec(rate_target=rate))

    def test_bounds_families_mismatch(self):
        with pytest.raises(ScenarioError, match="match 1:1"):
            Scenario(
                "MT-WND", pool=PoolSpec(families=("g4dn", "c5"), bounds=(4,))
            )

    def test_bad_workload(self):
        with pytest.raises(ScenarioError, match="n_queries"):
            Scenario("MT-WND", workload=WorkloadSpec(n_queries=0))
        with pytest.raises(ScenarioError, match="load_factor"):
            Scenario("MT-WND", workload=WorkloadSpec(load_factor=0.0))

    def test_bad_budget(self):
        with pytest.raises(ScenarioError, match="max_samples"):
            Scenario("MT-WND", budget=EvaluationBudget(max_samples=0))

    def test_builder_requires_model(self):
        with pytest.raises(ScenarioError, match="model"):
            Scenario.builder().build()

    def test_builder_equals_direct_construction(self):
        built = (
            Scenario.builder("DIEN")
            .workload(n_queries=1234, seed=7, load_factor=1.5)
            .qos(rate_target=0.98)
            .pool("g4dn", "c5", bounds=(4, 6))
            .budget(max_samples=21)
            .build()
        )
        direct = Scenario(
            model="DIEN",
            workload=WorkloadSpec(n_queries=1234, seed=7, load_factor=1.5),
            qos=QoSSpec(rate_target=0.98),
            pool=PoolSpec(families=("g4dn", "c5"), bounds=(4, 6)),
            budget=EvaluationBudget(max_samples=21),
        )
        assert built == direct
        assert hash(built) == hash(direct)

    def test_with_updates_are_validated(self):
        scenario = Scenario("MT-WND")
        assert scenario.with_workload(load_factor=1.5).workload.load_factor == 1.5
        with pytest.raises(ScenarioError):
            scenario.with_qos(rate_target=2.0)
        # The original is untouched (frozen value semantics).
        assert scenario.qos.rate_target == 0.99


SMALL = Scenario(
    model="MT-WND",
    workload=WorkloadSpec(n_queries=900, seed=1),
    pool=PoolSpec(families=("g4dn", "c5"), bounds=(5, 6)),
    budget=EvaluationBudget(max_samples=8),
)


class TestScenarioRunner:
    def test_materialization_is_cached(self):
        runner = ScenarioRunner(SMALL)
        assert runner.materialize(0) is runner.materialize(0)
        # Pinned workload seed: every run seed shares one materialization.
        assert runner.materialize(0) is runner.materialize(5)

    def test_equal_scenarios_share_a_runner(self):
        a = runner_for(SMALL)
        b = runner_for(
            Scenario(
                model="MT-WND",
                workload=WorkloadSpec(n_queries=900, seed=1),
                pool=PoolSpec(families=("g4dn", "c5"), bounds=(5, 6)),
                budget=EvaluationBudget(max_samples=8),
            )
        )
        assert a is b

    def test_explicit_bounds_skip_estimation(self):
        mat = ScenarioRunner(SMALL).materialize(0)
        assert mat.space.families == ("g4dn", "c5")
        assert mat.space.bounds == (5, 6)

    def test_fork_shares_lattice(self):
        runner = ScenarioRunner(SMALL)
        forked = runner.fork(load_factor=1.5)
        assert forked.scenario.workload.load_factor == 1.5
        assert forked.materialize(0).space is runner.materialize(0).space
        assert forked.materialize(0).objective is runner.materialize(0).objective

    def test_fork_can_change_workload_seed(self):
        forked = ScenarioRunner(SMALL).fork(seed=2)
        assert forked.scenario.workload.seed == 2
        assert forked.materialize(0).trace_seed == 2

    def test_default_start_embeds_homogeneous_optimum(self):
        runner = ScenarioRunner(SMALL)
        start = runner.default_start()
        homog = runner.homogeneous_optimum()
        assert start.families == ("g4dn", "c5")
        assert start.counts == (
            min(homog.pool.counts[0], runner.materialize(0).space.bounds[0]),
            0,
        )

    def test_bad_start_is_actionable(self):
        runner = ScenarioRunner(SMALL)
        with pytest.raises(ScenarioError, match="start"):
            runner.run("random", seed=0, start=(99, 99))

    def test_homogeneous_optimum(self):
        record = ScenarioRunner(SMALL).homogeneous_optimum()
        assert record.meets_qos
        assert record.pool.families == ("g4dn",)

    def test_strategy_instance_passthrough(self):
        runner = ScenarioRunner(SMALL)
        by_name = runner.run("random", seed=2, fresh_evaluator=True)
        by_instance = runner.run(
            RandomSearch(max_samples=8, seed=2), fresh_evaluator=True
        )
        assert by_name.best.pool.counts == by_instance.best.pool.counts
        with pytest.raises(ScenarioError, match="kwargs"):
            runner.run(RandomSearch(max_samples=8, seed=2), patience=None)


def _fingerprint(result):
    return (
        result.method,
        result.best.pool.counts if result.best else None,
        round(result.best_cost, 9),
        [r.counts for r in result.history],
    )


class TestEquivalenceAndSweeps:
    def test_scenario_run_reproduces_quick_search(self):
        """The satellite contract: same best pool, same history length."""
        expected = quick_search("MT-WND", n_queries=1500, seed=0, max_samples=12)
        got = Scenario(
            model="MT-WND",
            workload=WorkloadSpec(n_queries=1500),
            budget=EvaluationBudget(max_samples=12),
        ).run("ribbon", seed=0)
        assert got.best is not None
        assert got.best.pool == expected.best.pool
        assert len(got.history) == len(expected.history)

    def test_scenario_run_matches_hand_wired_pipeline(self):
        """`Scenario.run` is the old six-step wiring, verbatim."""
        model = get_model("MT-WND")
        trace = trace_for_model(model, n_queries=1500, seed=0)
        space = estimate_instance_bounds(model, trace, model.diverse_pool)
        objective = RibbonObjective(space)
        evaluator = ConfigurationEvaluator(model, trace, objective)
        expected = RibbonOptimizer(max_samples=12, seed=0).search(evaluator)

        got = Scenario(
            model="MT-WND",
            workload=WorkloadSpec(n_queries=1500),
            budget=EvaluationBudget(max_samples=12),
        ).run("ribbon", seed=0)
        assert got.best.pool == expected.best.pool
        assert [r.counts for r in got.history] == [
            r.counts for r in expected.history
        ]

    def test_run_many_is_seed_stable(self):
        runner = ScenarioRunner(SMALL)
        first = runner.run_many("ribbon", seeds=(0, 1, 2))
        second = runner.run_many("ribbon", seeds=(0, 1, 2))
        assert sorted(first) == [0, 1, 2]
        for seed in first:
            assert _fingerprint(first[seed]) == _fingerprint(second[seed])
        # Different seeds explore independently (not one shared trajectory).
        assert len({tuple(_fingerprint(r)[3]) for r in first.values()}) > 1

    def test_run_many_parallel_matches_sequential(self):
        runner = ScenarioRunner(SMALL)
        sequential = runner.run_many("random", seeds=(0, 1, 2))
        parallel = runner.run_many("random", seeds=(0, 1, 2), parallel=True)
        for seed in sequential:
            assert _fingerprint(sequential[seed]) == _fingerprint(parallel[seed])

    def test_eval_duration_hours_drives_all_cost_accounting(self):
        """Exploration and exhaustive dollars must use the same clock."""
        billed = SMALL.with_budget(eval_duration_hours=10.0)
        result = billed.run("random", seed=0, fresh_evaluator=True)
        spent = sum(r.cost_per_hour for r in result.history)
        assert result.exploration_cost_dollars == pytest.approx(10.0 * spent)
        assert 0.0 < result.exploration_cost_fraction() < 1.0

    def test_find_homogeneous_optimum_honors_callers_trace(self):
        """The back-compat wrapper must evaluate the trace it was given.

        A Gaussian-batch trace cannot be reconstructed from provenance, so
        replaying the returned pool on the caller's trace must reproduce
        the returned record exactly.
        """
        from repro.analysis.experiments import find_homogeneous_optimum
        from repro.simulator.engine import InferenceServingSimulator

        model = get_model("MT-WND")
        trace = trace_for_model(model, n_queries=1200, seed=3, gaussian=True)
        record = find_homogeneous_optimum(model, trace)
        replay = InferenceServingSimulator(model, track_queue=True).simulate(
            trace, record.pool
        )
        assert replay.qos_satisfaction_rate(model.qos_target_ms) == record.qos_rate

    def test_run_many_rejects_bad_seeds_and_instances(self):
        runner = ScenarioRunner(SMALL)
        with pytest.raises(ScenarioError, match="at least one"):
            runner.run_many("random", seeds=())
        with pytest.raises(ScenarioError, match="duplicate"):
            runner.run_many("random", seeds=(1, 1))
        with pytest.raises(ScenarioError, match="name"):
            runner.run_many(RandomSearch(max_samples=8, seed=0))


class TestSerialization:
    """Scenario <-> dict wire format (the service's submission body)."""

    def test_round_trip_is_identity(self):
        scenario = (
            Scenario.builder("MT-WND")
            .workload(n_queries=900, seed=4, load_factor=1.5)
            .qos(rate_target=0.95)
            .pool("g4dn", "t3", bounds=(3, 5))
            .budget(max_samples=12, batch_size=2)
            .build()
        )
        doc = scenario.to_dict()
        # The document is pure JSON: survives an actual encode/decode.
        assert Scenario.from_dict(json.loads(json.dumps(doc))) == scenario
        assert Scenario.from_dict(doc).identity() == scenario.identity()

    def test_partial_document_keeps_defaults(self):
        scenario = Scenario.from_dict({"model": "DIEN"})
        assert scenario == Scenario("DIEN")
        partial = Scenario.from_dict(
            {"model": "DIEN", "workload": {"n_queries": 777}}
        )
        assert partial.workload.n_queries == 777
        assert partial.budget == Scenario("DIEN").budget

    def test_none_valued_fields_mean_defaults(self):
        scenario = Scenario.from_dict(
            {"model": "MT-WND", "workload": {"seed": None}, "qos": None}
        )
        assert scenario == Scenario("MT-WND")

    def test_identity_is_stable_and_discriminating(self):
        a = Scenario("MT-WND")
        assert a.identity() == Scenario("MT-WND").identity()
        assert len(a.identity()) == 16
        changed = [
            a.with_workload(load_factor=1.2),
            a.with_workload(seed=9),
            a.with_qos(rate_target=0.95),
            a.with_budget(max_samples=41),
            Scenario("DIEN"),
        ]
        identities = {a.identity(), *[s.identity() for s in changed]}
        assert len(identities) == len(changed) + 1

    def test_non_object_document_rejected(self):
        with pytest.raises(ScenarioError, match="JSON object"):
            Scenario.from_dict(["MT-WND"])
        with pytest.raises(ScenarioError, match="JSON object"):
            Scenario.from_dict({"model": "MT-WND", "workload": [1, 2]})

    def test_missing_model_rejected(self):
        with pytest.raises(ScenarioError, match="model"):
            Scenario.from_dict({"workload": {"n_queries": 10}})

    def test_unknown_fields_named_in_error(self):
        with pytest.raises(ScenarioError, match="workloud"):
            Scenario.from_dict({"model": "MT-WND", "workloud": {}})
        with pytest.raises(ScenarioError, match="n_querys.*n_queries"):
            Scenario.from_dict(
                {"model": "MT-WND", "workload": {"n_querys": 10}}
            )

    def test_families_and_bounds_must_be_arrays(self):
        with pytest.raises(ScenarioError, match="array"):
            Scenario.from_dict(
                {"model": "MT-WND", "pool": {"families": "g4dn"}}
            )
        with pytest.raises(ScenarioError, match="array"):
            Scenario.from_dict({"model": "MT-WND", "pool": {"bounds": 4}})

    def test_bad_values_surface_builder_validation(self):
        with pytest.raises(ScenarioError, match="n_queries"):
            Scenario.from_dict(
                {"model": "MT-WND", "workload": {"n_queries": -5}}
            )
        with pytest.raises(ScenarioError, match="model"):
            Scenario.from_dict({"model": "NO-SUCH-MODEL"})

    @given(
        n_queries=st.integers(min_value=1, max_value=100_000),
        seed=st.one_of(st.none(), st.integers(min_value=0, max_value=2**31)),
        load_factor=st.floats(min_value=0.1, max_value=8.0, allow_nan=False),
        gaussian=st.booleans(),
        rate_target=st.floats(min_value=0.5, max_value=1.0, allow_nan=False),
        bounds=st.one_of(
            st.none(),
            st.tuples(
                st.integers(min_value=1, max_value=16),
                st.integers(min_value=1, max_value=16),
            ),
        ),
        max_samples=st.integers(min_value=1, max_value=500),
        batch_size=st.integers(min_value=1, max_value=8),
    )
    @settings(max_examples=40, deadline=None)
    def test_round_trip_property(
        self,
        n_queries,
        seed,
        load_factor,
        gaussian,
        rate_target,
        bounds,
        max_samples,
        batch_size,
    ):
        """Any valid scenario survives to_dict -> JSON -> from_dict intact."""
        builder = (
            Scenario.builder("MT-WND")
            .workload(
                n_queries=n_queries,
                seed=seed,
                load_factor=load_factor,
                gaussian=gaussian,
            )
            .qos(rate_target=rate_target)
            .budget(max_samples=max_samples, batch_size=batch_size)
        )
        if bounds is not None:
            builder = builder.pool("g4dn", "t3", bounds=bounds)
        scenario = builder.build()
        wire = json.loads(json.dumps(scenario.to_dict()))
        rebuilt = Scenario.from_dict(wire)
        assert rebuilt == scenario
        assert rebuilt.identity() == scenario.identity()
        assert rebuilt.to_dict() == scenario.to_dict()
