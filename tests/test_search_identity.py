"""The search-core rewrite's exactness contract.

The PR-2 optimizations (service-time cache, heap dispatch, analytic-gradient
GP, prepared-state kernels) must not change *what* the search does — only
how fast it does it.  These tests pin that contract:

* the benchmark workload's golden best pools and sample sequences (recorded
  in ``BENCH_search_core.json`` from the pre-rewrite code) are reproduced
  exactly;
* searches are invariant to cache sharing and dispatch path;
* the opt-in ``refit_period > 1`` fast schedule still finds the optimum.
"""

import json
import pathlib

import pytest

from repro.core.evaluator import ConfigurationEvaluator
from repro.core.objective import RibbonObjective
from repro.core.optimizer import RibbonOptimizer
from repro.core.search_space import SearchSpace
from repro.simulator.result_cache import SimulationResultCache
from repro.simulator.service import ServiceTimeCache
from tests.conftest import make_toy_model, make_toy_trace

BENCH_JSON = pathlib.Path(__file__).resolve().parent.parent / "BENCH_search_core.json"


def toy_ctx():
    model = make_toy_model(arrival_rate_qps=400.0)
    trace = make_toy_trace(model, n=600, seed=5)
    space = SearchSpace(("g4dn", "t3"), (4, 6))
    objective = RibbonObjective(space, qos_rate_target=0.95)
    return model, trace, space, objective


def run_search(model, trace, space, objective, seed, **kwargs):
    # Result memo disabled: repeat-run comparisons in this suite must
    # actually re-simulate, not replay memoized results.
    evaluator = ConfigurationEvaluator(
        model, trace, objective, result_cache=SimulationResultCache(maxsize=0)
    )
    return RibbonOptimizer(max_samples=25, seed=seed, **kwargs).search(evaluator)


class TestGoldenSequences:
    """Bench-workload sequences recorded before the rewrite, replayed after."""

    @pytest.fixture(scope="class")
    def bench_golden(self):
        artifact = json.loads(BENCH_JSON.read_text())
        return artifact["workload"], artifact["golden"]

    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_bench_workload_sequence_identical(self, bench_golden, seed):
        from repro.models.zoo import get_model
        from repro.workload.trace import trace_for_model

        spec, golden = bench_golden
        model = get_model(spec["model"])
        trace = trace_for_model(
            model,
            n_queries=spec["n_queries"],
            seed=spec["trace_seed"],
            load_factor=spec["load_factor"],
        )
        space = SearchSpace(tuple(spec["families"]), tuple(spec["bounds"]))
        evaluator = ConfigurationEvaluator(model, trace, RibbonObjective(space))
        res = RibbonOptimizer(max_samples=spec["max_samples"], seed=seed).search(
            evaluator
        )
        expected = golden[str(seed)]
        assert res.best is not None
        assert list(res.best.pool.counts) == expected["best"]
        assert [list(r.pool.counts) for r in res.history] == expected["sequence"]

    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_bench_sequence_identical_under_hetero_vector_dispatch(
        self, bench_golden, seed
    ):
        """The same golden sequences, re-run with every heterogeneous
        sample forced through the grouped-family vector kernel: the
        search must visit the exact recorded pools, and the counters
        must show the kernel actually served the mixed-family samples."""
        from repro.models.zoo import get_model
        from repro.workload.trace import trace_for_model

        spec, golden = bench_golden
        model = get_model(spec["model"])
        trace = trace_for_model(
            model,
            n_queries=spec["n_queries"],
            seed=spec["trace_seed"],
            load_factor=spec["load_factor"],
        )
        space = SearchSpace(tuple(spec["families"]), tuple(spec["bounds"]))
        evaluator = ConfigurationEvaluator(
            model,
            trace,
            RibbonObjective(space),
            result_cache=SimulationResultCache(maxsize=0),
            dispatch="vector",
        )
        res = RibbonOptimizer(max_samples=spec["max_samples"], seed=seed).search(
            evaluator
        )
        expected = golden[str(seed)]
        assert res.best is not None
        assert list(res.best.pool.counts) == expected["best"]
        assert [list(r.pool.counts) for r in res.history] == expected["sequence"]
        counts = evaluator.simulator.dispatch_counts
        assert counts["vector_hetero"] > 0
        assert counts["vector_fallback_hetero"] == 0


class TestInvariances:
    def test_search_invariant_to_cache_sharing(self):
        model, trace, space, objective = toy_ctx()
        # Both sides opt out of the result memo — it would replay the
        # isolated run's simulations into the shared run, hiding any
        # service-cache-induced divergence this test exists to catch.
        isolated = ConfigurationEvaluator(
            model,
            trace,
            objective,
            service_cache=ServiceTimeCache(maxsize=0),
            result_cache=SimulationResultCache(maxsize=0),
        )
        shared = ConfigurationEvaluator(
            model, trace, objective, result_cache=SimulationResultCache(maxsize=0)
        )
        r1 = RibbonOptimizer(max_samples=20, seed=3).search(isolated)
        r2 = RibbonOptimizer(max_samples=20, seed=3).search(shared)
        assert [r.pool.counts for r in r1.history] == [
            r.pool.counts for r in r2.history
        ]
        assert r1.best.pool.counts == r2.best.pool.counts
        assert r1.best.qos_rate == r2.best.qos_rate

    @pytest.mark.parametrize("seed", [0, 1, 2, 3])
    def test_search_repeatable_per_seed(self, seed):
        model, trace, space, objective = toy_ctx()
        a = run_search(model, trace, space, objective, seed)
        b = run_search(model, trace, space, objective, seed)
        assert [r.pool.counts for r in a.history] == [
            r.pool.counts for r in b.history
        ]


class TestRefitPeriod:
    def test_default_is_one(self):
        assert RibbonOptimizer().refit_period == 1

    def test_invalid_rejected(self):
        with pytest.raises(ValueError):
            RibbonOptimizer(refit_period=0)

    def test_fast_schedule_still_finds_the_optimum(self):
        from repro.baselines.exhaustive import find_optimal_configuration

        model, trace, space, objective = toy_ctx()
        truth = find_optimal_configuration(
            ConfigurationEvaluator(model, trace, objective)
        )
        res = run_search(
            model, trace, space, objective, seed=0, refit_period=5, patience=None
        )
        assert res.best is not None
        assert res.best.cost_per_hour <= truth.cost_per_hour + 1e-9

    def test_fast_schedule_respects_budget_and_no_resampling(self):
        model, trace, space, objective = toy_ctx()
        res = run_search(model, trace, space, objective, seed=1, refit_period=4)
        counts = [r.pool.counts for r in res.history]
        assert len(counts) == len(set(counts))
        assert res.n_samples <= 25

    def test_fast_schedule_refits_periodically(self, monkeypatch):
        from repro.gp.regression import GaussianProcessRegressor

        full_fits = []
        orig = GaussianProcessRegressor.fit

        def counting_fit(gp, X, y):
            full_fits.append(len(X))
            return orig(gp, X, y)

        monkeypatch.setattr(GaussianProcessRegressor, "fit", counting_fit)
        model, trace, space, objective = toy_ctx()
        res = run_search(
            model,
            trace,
            space,
            objective,
            seed=2,
            refit_period=3,
            patience=None,
            use_pruning=False,  # keep candidates alive for the full budget
        )
        assert res.n_samples == 25
        # One full refit per refit_period new samples — not just the first.
        assert len(full_fits) >= 5
        assert all(b - a >= 3 for a, b in zip(full_fits, full_fits[1:]))
