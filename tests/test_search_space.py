"""Unit tests for the search space and the m_i bound estimation."""

import numpy as np
import pytest

from repro.cloud.catalog import DEFAULT_CATALOG
from repro.core.search_space import SearchSpace, estimate_instance_bounds
from repro.simulator.pool import PoolConfiguration, grid_vectors
from tests.conftest import make_toy_model, make_toy_trace


class TestSearchSpace:
    def setup_method(self):
        self.space = SearchSpace(("g4dn", "t3"), (5, 12))

    def test_geometry(self):
        assert self.space.n_dims == 2
        assert self.space.n_configurations == 6 * 13 - 1

    def test_grid_shape(self):
        grid = self.space.grid()
        assert grid.shape == (self.space.n_configurations, 2)

    def test_pools_match_grid(self):
        pools = self.space.pools()
        assert len(pools) == self.space.n_configurations
        assert all(isinstance(p, PoolConfiguration) for p in pools[:3])

    def test_pool_roundtrip(self):
        p = self.space.pool((3, 4))
        assert p.counts == (3, 4)
        assert p.families == ("g4dn", "t3")

    def test_pool_outside_bounds_rejected(self):
        with pytest.raises(ValueError, match="outside bounds"):
            self.space.pool((6, 0))
        with pytest.raises(ValueError, match="dims"):
            self.space.pool((1,))

    def test_contains(self):
        assert self.space.contains(PoolConfiguration(("g4dn", "t3"), (5, 12)))
        assert not self.space.contains(PoolConfiguration(("g4dn", "t3"), (6, 0)))
        assert not self.space.contains(PoolConfiguration(("g4dn", "c5"), (1, 1)))

    def test_normalize_roundtrip(self):
        grid = self.space.grid()
        unit = self.space.normalize(grid)
        assert unit.min() >= 0.0 and unit.max() <= 1.0
        back = self.space.denormalize(unit)
        np.testing.assert_allclose(back, grid)

    def test_prices_and_max_cost(self):
        p = self.space.prices
        np.testing.assert_allclose(
            p, [DEFAULT_CATALOG["g4dn"].price_per_hour, DEFAULT_CATALOG["t3"].price_per_hour]
        )
        assert self.space.max_cost == pytest.approx(5 * 0.526 + 12 * 0.1664)

    def test_cost(self):
        assert self.space.cost((3, 4)) == pytest.approx(3 * 0.526 + 4 * 0.1664)

    def test_validation(self):
        with pytest.raises(ValueError, match="mismatch"):
            SearchSpace(("g4dn",), (1, 2))
        with pytest.raises(ValueError, match="duplicate"):
            SearchSpace(("g4dn", "g4dn"), (1, 2))
        with pytest.raises(ValueError, match=">= 1"):
            SearchSpace(("g4dn",), (0,))
        with pytest.raises(KeyError):
            SearchSpace(("nope",), (3,))


class TestBoundEstimation:
    def test_bounds_reflect_capacity(self):
        model = make_toy_model(arrival_rate_qps=400.0)
        trace = make_toy_trace(model, n=800)
        space = estimate_instance_bounds(
            model, trace, ("g4dn", "t3"), qos_target_ms=20.0, hard_cap=12
        )
        # g4dn (fast) saturates with fewer instances than t3 (slow).
        g_bound, t_bound = space.bounds
        assert 1 <= g_bound < t_bound <= 12

    def test_saturation_definition(self):
        """m_i is the smallest count whose QoS rate reaches the plateau."""
        model = make_toy_model(arrival_rate_qps=400.0)
        trace = make_toy_trace(model, n=800)
        space = estimate_instance_bounds(
            model, trace, ("g4dn",), qos_target_ms=20.0, hard_cap=12
        )
        (m,) = space.bounds
        from repro.simulator.engine import InferenceServingSimulator

        sim = InferenceServingSimulator(model, track_queue=False)
        rate_m = sim.simulate(
            trace, PoolConfiguration.homogeneous("g4dn", m)
        ).qos_satisfaction_rate(20.0)
        rate_next = sim.simulate(
            trace, PoolConfiguration.homogeneous("g4dn", m + 1)
        ).qos_satisfaction_rate(20.0)
        assert rate_next <= rate_m + 1e-3

    def test_hard_cap_respected(self):
        model = make_toy_model(arrival_rate_qps=2000.0)  # needs many instances
        trace = make_toy_trace(model, n=600)
        space = estimate_instance_bounds(
            model, trace, ("t3",), qos_target_ms=20.0, hard_cap=4
        )
        assert space.bounds == (4,)

    def test_returns_ready_space(self):
        model = make_toy_model()
        trace = make_toy_trace(model, n=400)
        space = estimate_instance_bounds(model, trace, ("g4dn", "t3"), hard_cap=8)
        assert isinstance(space, SearchSpace)
        assert space.families == ("g4dn", "t3")


class TestCachedGeometry:
    """grid()/grid_unit()/prices are built once and returned read-only."""

    def test_grid_cached_and_read_only(self):
        space = SearchSpace(("g4dn", "t3"), (2, 3))
        grid = space.grid()
        assert space.grid() is grid
        with pytest.raises(ValueError):
            grid[0, 0] = 99
        np.testing.assert_array_equal(grid, grid_vectors((2, 3)))

    def test_grid_unit_cached_and_consistent(self):
        space = SearchSpace(("g4dn", "t3"), (2, 3))
        unit = space.grid_unit()
        assert space.grid_unit() is unit
        np.testing.assert_array_equal(unit, space.normalize(space.grid()))
        with pytest.raises(ValueError):
            unit[0, 0] = 0.5

    def test_prices_cached_and_read_only(self):
        space = SearchSpace(("g4dn", "t3"), (2, 3))
        prices = space.prices
        assert space.prices is prices
        with pytest.raises(ValueError):
            prices[0] = 0.0

    def test_caches_are_per_instance(self):
        a = SearchSpace(("g4dn", "t3"), (2, 3))
        b = SearchSpace(("g4dn", "t3"), (2, 4))
        assert a.grid().shape != b.grid().shape
