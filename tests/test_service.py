"""The optimization service's job manager and snapshot store.

Everything here runs against a **stub runner factory** — the injectable
seam the service was designed around — so the full lifecycle (queued →
materializing → searching → done/failed/cancelled), cooperative
cancellation, fork-on-load-change, warm restart from the snapshot store,
result reuse, and concurrent submissions are all exercised without a
single simulation.
"""

import threading

import pytest

from repro.api.scenario import Scenario, ScenarioError
from repro.core.evaluator import EvaluationRecord
from repro.core.result import SearchResult
from repro.service import (
    JobManager,
    SnapshotStore,
    record_to_dict,
    search_result_to_dict,
)
from repro.simulator.pool import PoolConfiguration


def make_scenario(**workload) -> Scenario:
    workload.setdefault("n_queries", 500)
    workload.setdefault("seed", 1)
    return (
        Scenario.builder("MT-WND")
        .workload(**workload)
        .pool("g4dn", "t3", bounds=(4, 4))
        .budget(max_samples=6)
        .build()
    )


def make_record(i: int, cost: float, meets: bool = True) -> EvaluationRecord:
    return EvaluationRecord(
        pool=PoolConfiguration(("g4dn", "t3"), (i + 1, 1)),
        qos_rate=0.999 if meets else 0.5,
        cost_per_hour=cost,
        objective=cost if meets else 10.0,
        meets_qos=meets,
        sample_index=i,
        p99_ms=12.0,
        mean_queue_length=0.4,
    )


class StubRunner:
    """ScenarioRunner lookalike: canned records, no simulation anywhere.

    ``gate`` (a threading.Event) makes each evaluation wait, so tests can
    hold a search mid-flight to observe intermediate states and exercise
    cooperative cancellation deterministically.
    """

    def __init__(self, scenario, *, n_records=3, gate=None, fail=None):
        self.scenario = scenario
        self.n_records = n_records
        self.gate = gate
        self.fail = fail
        self.materialize_seeds: list[int] = []
        self.forked_with: list[dict] = []

    def materialize(self, seed=0):
        self.materialize_seeds.append(seed)

    def run(self, strategy, *, seed=0, progress=None, **kwargs):
        if self.fail is not None:
            raise self.fail
        history = []
        for i in range(self.n_records):
            if self.gate is not None:
                assert self.gate.wait(timeout=10.0), "test gate never opened"
            rec = make_record(i, cost=3.0 - 0.5 * i)
            history.append(rec)
            if progress is not None:
                progress(rec)  # may raise JobCancelled, like the real hook
        best = min(
            (r for r in history if r.meets_qos),
            key=lambda r: r.cost_per_hour,
            default=None,
        )
        return SearchResult(
            method=strategy,
            best=best,
            history=tuple(history),
            exploration_cost_dollars=0.01,
            exhaustive_cost_dollars=1.0,
            converged=True,
            metadata={"seed": seed, **kwargs},
        )

    def fork(self, **workload_changes):
        self.forked_with.append(workload_changes)
        return StubRunner(
            self.scenario.with_workload(**workload_changes),
            n_records=self.n_records,
        )

    def cache_stats(self):
        return {"n_materializations": 0}


class StubFactory:
    """Counts scenarios it built runners for (warm-restart assertions)."""

    def __init__(self, **runner_kwargs):
        self.runner_kwargs = runner_kwargs
        self.built: list[StubRunner] = []

    def __call__(self, scenario):
        runner = StubRunner(scenario, **self.runner_kwargs)
        self.built.append(runner)
        return runner


@pytest.fixture
def manager():
    mgr = JobManager(runner_factory=StubFactory(), max_workers=2)
    yield mgr
    mgr.shutdown(cancel_running=True)


class TestLifecycle:
    def test_submit_runs_to_done(self, manager):
        job = manager.submit(make_scenario(), "ribbon", seed=3)
        manager.wait(job.id, timeout=10)
        assert job.state == "done"
        assert job.n_evaluations == 3
        assert job.best is not None
        assert job.best["cost_per_hour"] == pytest.approx(2.0)
        assert job.result_dict == search_result_to_dict(job.result)
        assert job.result_dict["metadata"]["seed"] == 3
        assert job.started_at is not None and job.finished_at is not None

    def test_strategy_kwargs_reach_the_runner(self, manager):
        job = manager.submit(make_scenario(), "ribbon", seed=0, batch_size=4)
        manager.wait(job.id, timeout=10)
        assert job.result_dict["metadata"]["batch_size"] == 4

    def test_submit_accepts_scenario_dict(self, manager):
        job = manager.submit(make_scenario().to_dict(), "random")
        manager.wait(job.id, timeout=10)
        assert job.state == "done"
        assert job.scenario == make_scenario()

    def test_bad_scenario_dict_rejected_before_queueing(self, manager):
        with pytest.raises(ScenarioError, match="unknown"):
            manager.submit({"model": "MT-WND", "workloud": {}}, "ribbon")
        assert manager.jobs() == []

    def test_blank_strategy_rejected(self, manager):
        with pytest.raises(ScenarioError, match="strategy"):
            manager.submit(make_scenario(), "  ")

    def test_strategy_validator_rejects_unknown_names(self):
        def validator(name):
            if name != "known":
                raise KeyError(f"unknown strategy {name!r}")

        mgr = JobManager(
            runner_factory=StubFactory(), strategy_validator=validator
        )
        try:
            with pytest.raises(KeyError, match="no-such"):
                mgr.submit(make_scenario(), "no-such")
            assert mgr.jobs() == []
            mgr.submit(make_scenario(), "known")
        finally:
            mgr.shutdown(cancel_running=True)

    def test_failure_is_captured_not_raised(self):
        factory = StubFactory(fail=RuntimeError("lattice exploded"))
        mgr = JobManager(runner_factory=factory)
        try:
            job = mgr.submit(make_scenario(), "ribbon")
            mgr.wait(job.id, timeout=10)
            assert job.state == "failed"
            assert "lattice exploded" in job.error
            assert job.result_dict is None
        finally:
            mgr.shutdown()

    def test_progress_bumps_version_per_evaluation(self, manager):
        job = manager.submit(make_scenario(), "ribbon")
        manager.wait(job.id, timeout=10)
        # queued->materializing, ->searching, 3 evaluations, ->done
        assert job.version >= 6
        snap = job.snapshot(full=True)
        assert snap["scenario"]["model"] == "MT-WND"
        assert snap["cache_stats"] == {"n_materializations": 0}

    def test_unknown_job_raises_keyerror(self, manager):
        with pytest.raises(KeyError, match="nope"):
            manager.get("nope")


class TestCancellation:
    def test_running_job_cancels_at_next_evaluation(self):
        gate = threading.Event()
        mgr = JobManager(runner_factory=StubFactory(gate=gate), max_workers=1)
        try:
            job = mgr.submit(make_scenario(), "ribbon")
            # The worker is now blocked inside run() waiting on the gate.
            version = job.wait_change(-1, timeout=5)
            while job.state != "searching":
                version = job.wait_change(version, timeout=5)
            mgr.cancel(job.id)
            gate.set()  # release the stub; its next progress() raises
            mgr.wait(job.id, timeout=10)
            assert job.state == "cancelled"
            assert job.result_dict is None
        finally:
            mgr.shutdown(cancel_running=True)

    def test_queued_job_cancels_immediately(self):
        gate = threading.Event()
        mgr = JobManager(runner_factory=StubFactory(gate=gate), max_workers=1)
        try:
            running = mgr.submit(make_scenario(seed=1), "ribbon")
            queued = mgr.submit(make_scenario(seed=2), "ribbon")
            mgr.cancel(queued.id)
            assert queued.state == "cancelled"
            gate.set()
            mgr.wait(running.id, timeout=10)
            assert running.state == "done"
            # The cancelled job's worker slot never ran a search.
            assert queued.n_evaluations == 0
        finally:
            mgr.shutdown(cancel_running=True)


class TestFork:
    def test_fork_shares_parent_runner_state(self, manager):
        parent = manager.submit(make_scenario(), "ribbon", seed=5)
        manager.wait(parent.id, timeout=10)
        child = manager.fork(parent.id, load_factor=1.5)
        manager.wait(child.id, timeout=10)
        assert child.state == "done"
        assert child.forked_from == parent.id
        assert child.workload_changes == {"load_factor": 1.5}
        # Forked through the parent's runner, not a fresh factory build.
        assert parent.runner.forked_with == [{"load_factor": 1.5}]
        assert child.scenario.workload.load_factor == pytest.approx(1.5)
        # Strategy and seed inherited from the parent unless overridden.
        assert child.strategy == parent.strategy
        assert child.seed == 5

    def test_fork_can_override_strategy_and_seed(self, manager):
        parent = manager.submit(make_scenario(), "ribbon")
        manager.wait(parent.id, timeout=10)
        child = manager.fork(parent.id, strategy="random", seed=9, load_factor=2.0)
        manager.wait(child.id, timeout=10)
        assert child.strategy == "random"
        assert child.seed == 9

    def test_fork_requires_a_workload_change(self, manager):
        parent = manager.submit(make_scenario(), "ribbon")
        manager.wait(parent.id, timeout=10)
        with pytest.raises(ScenarioError, match="workload change"):
            manager.fork(parent.id)

    def test_bad_fork_field_is_a_scenario_error(self, manager):
        parent = manager.submit(make_scenario(), "ribbon")
        manager.wait(parent.id, timeout=10)
        with pytest.raises(ScenarioError, match="fork"):
            manager.fork(parent.id, warp_factor=9)


class TestReuse:
    def test_identical_resubmission_returns_same_job(self, manager):
        first = manager.submit(make_scenario(), "ribbon", seed=0)
        manager.wait(first.id, timeout=10)
        again = manager.submit(make_scenario(), "ribbon", seed=0)
        assert again is first

    def test_different_seed_or_options_is_a_new_job(self, manager):
        first = manager.submit(make_scenario(), "ribbon", seed=0)
        manager.wait(first.id, timeout=10)
        other_seed = manager.submit(make_scenario(), "ribbon", seed=1)
        other_opts = manager.submit(
            make_scenario(), "ribbon", seed=0, batch_size=4
        )
        assert other_seed is not first and other_opts is not first

    def test_reuse_false_forces_a_fresh_search(self, manager):
        first = manager.submit(make_scenario(), "ribbon", seed=0)
        manager.wait(first.id, timeout=10)
        again = manager.submit(make_scenario(), "ribbon", seed=0, reuse=False)
        assert again is not first
        manager.wait(again.id, timeout=10)
        assert again.state == "done"


class TestWarmRestart:
    def test_history_survives_a_daemon_generation(self, tmp_path):
        store = SnapshotStore(tmp_path)
        first_gen = JobManager(runner_factory=StubFactory(), store=store)
        job = first_gen.submit(make_scenario(), "ribbon", seed=4)
        first_gen.wait(job.id, timeout=10)
        first_gen.shutdown()

        factory = StubFactory()
        second_gen = JobManager(runner_factory=factory, store=store)
        try:
            restored = second_gen.get(job.id)
            assert restored.restored and restored.state == "done"
            assert restored.result_dict == job.result_dict
            assert restored.best == job.best
            # Re-submitting the identical request is answered from history
            # without building a runner, let alone searching.
            again = second_gen.submit(make_scenario(), "ribbon", seed=4)
            assert again is restored
            assert factory.built == []
        finally:
            second_gen.shutdown()

    def test_restored_job_can_be_forked(self, tmp_path):
        store = SnapshotStore(tmp_path)
        first_gen = JobManager(runner_factory=StubFactory(), store=store)
        job = first_gen.submit(make_scenario(), "ribbon")
        first_gen.wait(job.id, timeout=10)
        first_gen.shutdown()

        factory = StubFactory()
        second_gen = JobManager(runner_factory=factory, store=store)
        try:
            child = second_gen.fork(job.id, load_factor=1.25)
            second_gen.wait(child.id, timeout=10)
            assert child.state == "done"
            assert child.forked_from == job.id
            # The restored parent had no live runner: built on demand.
            assert len(factory.built) == 1
        finally:
            second_gen.shutdown()

    def test_torn_trailing_line_loses_only_itself(self, tmp_path):
        store = SnapshotStore(tmp_path)
        mgr = JobManager(runner_factory=StubFactory(), store=store)
        job = mgr.submit(make_scenario(), "ribbon")
        mgr.wait(job.id, timeout=10)
        mgr.shutdown()
        path = store.results_path(job.scenario)
        with path.open("a", encoding="utf-8") as fh:
            fh.write('{"job_id": "j9999-dead", "trunca')  # crash mid-append
        second = JobManager(runner_factory=StubFactory(), store=store)
        try:
            assert second.get(job.id).state == "done"
            assert len(second.jobs()) == 1
        finally:
            second.shutdown()


class TestConcurrency:
    def test_many_concurrent_submissions_all_finish(self):
        mgr = JobManager(runner_factory=StubFactory(), max_workers=4)
        try:
            jobs = [
                mgr.submit(make_scenario(seed=i), "ribbon", seed=i)
                for i in range(12)
            ]
            for job in jobs:
                mgr.wait(job.id, timeout=30)
            assert all(j.state == "done" for j in jobs)
            assert len({j.id for j in jobs}) == 12
            stats = mgr.stats()
            assert stats["jobs_by_state"]["done"] == 12
            assert stats["total_evaluations"] == 36
        finally:
            mgr.shutdown()

    def test_shutdown_cancels_queued_jobs(self):
        gate = threading.Event()
        mgr = JobManager(runner_factory=StubFactory(gate=gate), max_workers=1)
        running = mgr.submit(make_scenario(seed=1), "ribbon")
        queued = mgr.submit(make_scenario(seed=2), "ribbon")
        gate.set()
        mgr.shutdown(cancel_running=True)
        assert running.terminal
        assert queued.terminal


class TestStore:
    def test_scenario_spec_written_once(self, tmp_path):
        store = SnapshotStore(tmp_path)
        scn = make_scenario()
        path = store.save_scenario(scn)
        before = path.read_text()
        store.save_scenario(scn)
        assert path.read_text() == before
        assert path.name == f"{scn.identity()}.json"

    def test_lookup_matches_options_key_exactly(self, tmp_path):
        store = SnapshotStore(tmp_path)
        scn = make_scenario()
        store.append_result(
            scn, {"strategy": "ribbon", "seed": 0, "options_key": "", "n": 1}
        )
        store.append_result(
            scn,
            {
                "strategy": "ribbon",
                "seed": 0,
                "options_key": '{"batch_size": 4}',
                "n": 2,
            },
        )
        assert store.lookup(scn, "ribbon", 0)["n"] == 1
        assert store.lookup(scn, "ribbon", 0, '{"batch_size": 4}')["n"] == 2
        assert store.lookup(scn, "ribbon", 1) is None
        assert store.lookup(make_scenario(seed=9), "ribbon", 0) is None

    def test_record_round_trip_shape(self):
        rec = make_record(2, cost=1.5)
        doc = record_to_dict(rec)
        assert doc["families"] == ["g4dn", "t3"]
        assert doc["counts"] == [3, 1]
        assert doc["cost_per_hour"] == pytest.approx(1.5)
        assert doc["meets_qos"] is True

    def test_stats_counts_specs_and_results(self, tmp_path):
        store = SnapshotStore(tmp_path)
        scn = make_scenario()
        store.append_result(scn, {"strategy": "a", "seed": 0, "options_key": ""})
        store.append_result(scn, {"strategy": "b", "seed": 0, "options_key": ""})
        assert store.stats() == {
            "root": str(tmp_path),
            "n_scenarios": 1,
            "n_results": 2,
        }
