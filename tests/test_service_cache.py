"""Tests for the per-workload service-time matrix cache."""

import gc

import numpy as np
import pytest

from repro.core.objective import RibbonObjective
from repro.core.evaluator import ConfigurationEvaluator
from repro.core.search_space import SearchSpace
from repro.simulator.engine import InferenceServingSimulator
from repro.simulator.events import EventHeapSimulator
from repro.simulator.pool import PoolConfiguration
from repro.simulator.service import (
    ServiceTimeCache,
    service_time_matrix,
    shared_service_cache,
)
from tests.conftest import make_toy_model, make_toy_trace


@pytest.fixture
def cache():
    return ServiceTimeCache(maxsize=8)


class TestMatrixCaching:
    def test_hit_returns_same_object(self, cache, toy_model, toy_trace):
        fams = ("g4dn", "t3")
        a = cache.matrix(toy_model, toy_trace, fams)
        b = cache.matrix(toy_model, toy_trace, fams)
        assert a is b
        assert cache.hits == 1 and cache.misses == 1

    def test_matches_uncached_computation(self, cache, toy_model, toy_trace):
        fams = ("g4dn", "t3")
        cached = cache.matrix(toy_model, toy_trace, fams)
        fresh = service_time_matrix(toy_model, toy_trace, fams)
        np.testing.assert_array_equal(cached, fresh)

    def test_cached_matrix_is_read_only(self, cache, toy_model, toy_trace):
        mat = cache.matrix(toy_model, toy_trace, ("g4dn",))
        with pytest.raises(ValueError):
            mat[0, 0] = 1.0

    def test_distinct_families_are_distinct_entries(
        self, cache, toy_model, toy_trace
    ):
        a = cache.matrix(toy_model, toy_trace, ("g4dn", "t3"))
        b = cache.matrix(toy_model, toy_trace, ("t3", "g4dn"))
        assert len(cache) == 2
        np.testing.assert_array_equal(a[0], b[1])

    def test_distinct_traces_are_distinct_entries(self, cache, toy_model):
        t1 = make_toy_trace(toy_model, n=50, seed=1)
        t2 = make_toy_trace(toy_model, n=50, seed=2)
        cache.matrix(toy_model, t1, ("g4dn",))
        cache.matrix(toy_model, t2, ("g4dn",))
        assert len(cache) == 2

    def test_lru_eviction(self, toy_model):
        cache = ServiceTimeCache(maxsize=2)
        traces = [make_toy_trace(toy_model, n=20, seed=s) for s in range(3)]
        for t in traces:
            cache.matrix(toy_model, t, ("g4dn",))
        assert len(cache) == 2
        # The oldest entry was evicted: asking again recomputes.
        misses = cache.misses
        cache.matrix(toy_model, traces[0], ("g4dn",))
        assert cache.misses == misses + 1

    def test_entries_dropped_when_trace_is_garbage_collected(self, toy_model):
        cache = ServiceTimeCache(maxsize=8)
        trace = make_toy_trace(toy_model, n=20, seed=3)
        cache.matrix(toy_model, trace, ("g4dn",))
        assert len(cache) == 1
        del trace
        gc.collect()
        assert len(cache) == 0

    def test_maxsize_zero_disables_caching(self, toy_model, toy_trace):
        cache = ServiceTimeCache(maxsize=0)
        a = cache.matrix(toy_model, toy_trace, ("g4dn",))
        b = cache.matrix(toy_model, toy_trace, ("g4dn",))
        assert a is not b
        np.testing.assert_array_equal(a, b)
        assert len(cache) == 0

    def test_rows_and_arrivals_views(self, cache, toy_model, toy_trace):
        fams = ("g4dn", "t3")
        rows = cache.rows(toy_model, toy_trace, fams)
        mat = cache.matrix(toy_model, toy_trace, fams)
        assert rows == [r.tolist() for r in mat]
        assert cache.rows(toy_model, toy_trace, fams) is rows
        arr = cache.arrival_list(toy_trace)
        assert arr == toy_trace.arrival_s.tolist()
        assert cache.arrival_list(toy_trace) is arr

    def test_invalid_maxsize_rejected(self):
        with pytest.raises(ValueError):
            ServiceTimeCache(maxsize=-1)


class TestWiring:
    def test_both_engines_share_the_default_cache(self, toy_model):
        fast = InferenceServingSimulator(toy_model)
        ref = EventHeapSimulator(toy_model)
        assert fast.service_cache is shared_service_cache()
        assert ref._service_cache is shared_service_cache()

    def test_engines_agree_through_one_cache(self, toy_model, toy_trace):
        cache = ServiceTimeCache()
        pool = PoolConfiguration(("g4dn", "t3"), (1, 2))
        fast = InferenceServingSimulator(toy_model, service_cache=cache)
        ref = EventHeapSimulator(toy_model, service_cache=cache)
        a = fast.simulate(toy_trace, pool)
        b = ref.simulate(toy_trace, pool)
        np.testing.assert_allclose(a.latency_s, b.latency_s, rtol=0, atol=0)

    def test_evaluator_propagates_cache_through_fork(
        self, toy_model, toy_trace, toy_space
    ):
        cache = ServiceTimeCache()
        objective = RibbonObjective(toy_space, qos_rate_target=0.95)
        evaluator = ConfigurationEvaluator(
            toy_model, toy_trace, objective, service_cache=cache
        )
        evaluator.evaluate(toy_space.pool((1, 1)))
        assert cache.misses == 1
        fork = evaluator.fork(make_toy_trace(toy_model, n=60, seed=11))
        fork.evaluate(toy_space.pool((1, 1)))
        assert cache.misses == 2  # same cache object, new trace key
        assert len(cache) == 2

    def test_one_search_computes_the_matrix_once(
        self, toy_model, toy_trace, toy_space
    ):
        cache = ServiceTimeCache()
        objective = RibbonObjective(toy_space, qos_rate_target=0.95)
        evaluator = ConfigurationEvaluator(
            toy_model, toy_trace, objective, service_cache=cache
        )
        for counts in ((1, 0), (2, 1), (0, 3), (4, 6), (1, 1)):
            evaluator.evaluate(toy_space.pool(counts))
        assert cache.misses == 1
        assert cache.hits >= 4

    def test_cache_results_identical_to_cacheless(self, toy_model, toy_trace):
        from repro.simulator.result_cache import SimulationResultCache

        pool = PoolConfiguration(("g4dn", "t3"), (2, 3))
        # The whole-result memo is disabled on both sides: it would hand
        # the cacheless simulator the cached simulator's result verbatim,
        # turning this A-vs-B comparison into A-vs-A.
        cached = InferenceServingSimulator(
            toy_model, result_cache=SimulationResultCache(maxsize=0)
        )
        uncached = InferenceServingSimulator(
            toy_model,
            service_cache=ServiceTimeCache(maxsize=0),
            result_cache=SimulationResultCache(maxsize=0),
        )
        a = cached.simulate(toy_trace, pool)
        b = uncached.simulate(toy_trace, pool)
        assert a is not b
        np.testing.assert_array_equal(a.latency_s, b.latency_s)
        np.testing.assert_array_equal(a.queue_len_at_arrival, b.queue_len_at_arrival)


class TestCacheLifetime:
    def test_cache_is_collectable_despite_long_lived_tracked_objects(self):
        """Finalizers must not pin the cache while zoo models live forever."""
        import weakref

        from repro.models.zoo import get_model

        model = get_model("MT-WND")  # process-lifetime singleton
        trace = make_toy_trace(make_toy_model(), n=20, seed=4)
        cache = ServiceTimeCache()
        cache.matrix(model, trace, ("g4dn",))
        cache.arrival_list(trace)
        ref = weakref.ref(cache)
        del cache
        gc.collect()
        assert ref() is None
