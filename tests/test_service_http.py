"""The service's HTTP surface and Python client over a real socket.

A stub-backed daemon on an ephemeral port covers every endpoint —
submit, list, poll, result, NDJSON stream, cancel, fork, health, stats —
plus the structured error bodies (400/404/409).  One final smoke test
drives the real runner factory end to end on a tiny scenario, the only
test in this file that simulates anything.
"""

import json
import threading
import urllib.request

import pytest

from repro.api.scenario import Scenario
from repro.service import JobManager, ServiceClient, ServiceError, make_server
from tests.test_service import StubFactory, make_scenario


@pytest.fixture
def service():
    """(manager, client) around a stub-backed daemon on an OS-picked port."""
    manager = JobManager(runner_factory=StubFactory(), max_workers=2)
    server = make_server(manager, port=0)
    threading.Thread(target=server.serve_forever, daemon=True).start()
    host, port = server.server_address[:2]
    yield manager, ServiceClient(f"http://{host}:{port}", timeout=10.0)
    server.shutdown()
    server.server_close()
    manager.shutdown(cancel_running=True)


class TestEndpoints:
    def test_health_and_stats(self, service):
        _, client = service
        health = client.health()
        assert health["status"] == "ok"
        assert set(health["jobs"]) == {
            "queued",
            "materializing",
            "searching",
            "done",
            "failed",
            "cancelled",
        }
        stats = client.stats()
        assert stats["n_jobs"] == 0
        assert stats["uptime_s"] >= 0

    def test_submit_poll_result_round_trip(self, service):
        _, client = service
        job = client.submit(make_scenario(), "ribbon", seed=2)
        assert job["id"].startswith("j0001-")
        final = client.wait(job["id"], timeout=10)
        assert final["state"] == "done"
        assert final["evaluations"] == 3
        body = client.result(job["id"])
        assert body["id"] == job["id"]
        assert body["result"]["method"] == "ribbon"
        assert body["result"]["best"]["cost_per_hour"] == pytest.approx(2.0)
        assert [j["id"] for j in client.jobs()] == [job["id"]]
        # The full single-job view carries the scenario document back.
        assert client.job(job["id"])["scenario"] == make_scenario().to_dict()

    def test_stream_ends_with_the_terminal_snapshot(self, service):
        _, client = service
        job = client.submit(make_scenario(), "ribbon")
        lines = list(client.stream(job["id"]))
        assert lines, "stream yielded nothing"
        assert lines[-1]["state"] == "done"
        assert lines[-1]["evaluations"] == 3
        # Versions strictly increase line to line: no duplicates, no gaps
        # backwards — the stream is a changelog, not a poll.
        versions = [line["version"] for line in lines]
        assert versions == sorted(set(versions))

    def test_stream_of_finished_job_is_one_line(self, service):
        _, client = service
        job = client.submit(make_scenario(), "ribbon")
        client.wait(job["id"], timeout=10)
        lines = list(client.stream(job["id"]))
        assert len(lines) == 1
        assert lines[0]["state"] == "done"

    def test_cancel_endpoint(self, service):
        manager, client = service
        job = client.submit(make_scenario(), "ribbon")
        snap = client.cancel(job["id"])
        assert snap["id"] == job["id"]
        final = client.wait(job["id"], timeout=10)
        assert final["state"] in ("cancelled", "done")  # may already have won

    def test_fork_endpoint(self, service):
        _, client = service
        parent = client.submit(make_scenario(), "ribbon", seed=1)
        client.wait(parent["id"], timeout=10)
        child = client.fork(parent["id"], load_factor=1.5, seed=7)
        assert child["forked_from"] == parent["id"]
        assert child["workload_changes"] == {"load_factor": 1.5}
        final = client.wait(child["id"], timeout=10)
        assert final["state"] == "done"
        assert final["seed"] == 7

    def test_reuse_over_http(self, service):
        _, client = service
        first = client.submit(make_scenario(), "ribbon", seed=0)
        client.wait(first["id"], timeout=10)
        again = client.submit(make_scenario(), "ribbon", seed=0)
        assert again["id"] == first["id"]
        fresh = client.submit(make_scenario(), "ribbon", seed=0, reuse=False)
        assert fresh["id"] != first["id"]

    def test_options_pass_through(self, service):
        _, client = service
        job = client.submit(make_scenario(), "ribbon", seed=0, batch_size=4)
        client.wait(job["id"], timeout=10)
        result = client.result(job["id"])["result"]
        assert result["metadata"]["batch_size"] == 4


class TestErrors:
    def test_bad_scenario_is_a_structured_400(self, service):
        _, client = service
        with pytest.raises(ServiceError) as err:
            client.submit({"model": "MT-WND", "workloud": {}}, "ribbon")
        assert err.value.status == 400
        assert err.value.error_type == "ScenarioError"
        assert "workloud" in err.value.message

    def test_missing_scenario_key_is_400(self, service):
        _, client = service
        with pytest.raises(ServiceError) as err:
            client._request("POST", "/jobs", {"strategy": "ribbon"})
        assert err.value.status == 400
        assert "scenario" in err.value.message

    def test_unknown_job_is_404(self, service):
        _, client = service
        for call in (
            lambda: client.job("j9999-missing"),
            lambda: client.result("j9999-missing"),
            lambda: client.cancel("j9999-missing"),
            lambda: client.fork("j9999-missing", load_factor=2.0),
        ):
            with pytest.raises(ServiceError) as err:
                call()
            assert err.value.status == 404
            assert err.value.error_type == "NotFound"

    def test_unknown_path_is_404(self, service):
        _, client = service
        with pytest.raises(ServiceError) as err:
            client._request("GET", "/nope")
        assert err.value.status == 404

    def test_result_before_done_is_409(self, service):
        manager, client = service
        # A queued job behind a held worker can't have a result yet.
        import tests.test_service as ts

        gate = threading.Event()
        manager._runner_factory = ts.StubFactory(gate=gate)
        job = client.submit(make_scenario(), "ribbon")
        try:
            with pytest.raises(ServiceError) as err:
                client.result(job["id"])
            assert err.value.status == 409
            assert err.value.error_type == "ResultNotReady"
        finally:
            gate.set()

    def test_malformed_json_body_is_400(self, service):
        _, client = service
        req = urllib.request.Request(
            client.base_url + "/jobs",
            data=b"{not json",
            method="POST",
            headers={"Content-Type": "application/json"},
        )
        with pytest.raises(urllib.error.HTTPError) as err:
            urllib.request.urlopen(req, timeout=5)
        assert err.value.code == 400
        body = json.loads(err.value.read())
        assert body["error"]["type"] == "ScenarioError"

    def test_bad_fork_body_is_400(self, service):
        _, client = service
        parent = client.submit(make_scenario(), "ribbon")
        client.wait(parent["id"], timeout=10)
        with pytest.raises(ServiceError) as err:
            client._request(
                "POST", f"/jobs/{parent['id']}/fork", {"workload": "nope"}
            )
        assert err.value.status == 400


class TestRealRunnerSmoke:
    def test_tiny_search_end_to_end(self):
        """The one simulating test: default factory, real search, stream."""
        manager = JobManager(max_workers=1)
        server = make_server(manager, port=0)
        threading.Thread(target=server.serve_forever, daemon=True).start()
        host, port = server.server_address[:2]
        client = ServiceClient(f"http://{host}:{port}", timeout=60.0)
        try:
            scenario = (
                Scenario.builder("MT-WND")
                .workload(n_queries=300, seed=2)
                .pool("g4dn", "t3", bounds=(4, 4))
                .budget(max_samples=5)
                .build()
            )
            job = client.submit(scenario, "random", seed=0)
            lines = list(client.stream(job["id"]))
            assert lines[-1]["state"] == "done"
            result = client.result(job["id"])["result"]
            # Distinct evaluations (repeat draws are memoized, so <= budget)
            # must agree between the final stream line and the result.
            assert 1 <= result["n_samples"] <= 5
            assert lines[-1]["evaluations"] == result["n_samples"]
            assert len(result["history"]) == result["n_samples"]
            # An unknown strategy 400s through the registry validator.
            with pytest.raises(ServiceError) as err:
                client.submit(scenario, "gradient-descent")
            assert err.value.status == 400
            assert err.value.error_type == "UnknownStrategyError"
        finally:
            server.shutdown()
            server.server_close()
            manager.shutdown(cancel_running=True)
