"""Tests for the process-wide whole-simulation result memo.

Mirrors ``tests/test_service_cache.py`` for the cache mechanics (identity
keys, LRU bound, weakref eviction, opt-out), then covers the layers above:
engine wiring, evaluator fork propagation, and ``ScenarioRunner.run_many``
determinism (serial vs parallel, memo on vs off) with cache-stats
introspection.
"""

import gc
import threading
from concurrent.futures import ThreadPoolExecutor

import numpy as np
import pytest

from repro.api import EvaluationBudget, PoolSpec, Scenario, ScenarioRunner, WorkloadSpec
from repro.core.evaluator import ConfigurationEvaluator
from repro.core.objective import RibbonObjective
from repro.simulator.engine import InferenceServingSimulator
from repro.simulator.events import EventHeapSimulator
from repro.simulator.pool import PoolConfiguration
from repro.simulator.result_cache import (
    SimulationResultCache,
    shared_simulation_cache,
)
from repro.simulator.service import ServiceTimeCache
from tests.conftest import make_toy_trace


@pytest.fixture
def memo():
    return SimulationResultCache(maxsize=8)


def make_sim(model, memo, **kwargs):
    return InferenceServingSimulator(model, result_cache=memo, **kwargs)


POOL = PoolConfiguration(("g4dn", "t3"), (1, 2))


class TestResultMemo:
    def test_hit_returns_same_object(self, memo, toy_model, toy_trace):
        sim = make_sim(toy_model, memo)
        a = sim.simulate(toy_trace, POOL)
        b = sim.simulate(toy_trace, POOL)
        assert a is b
        assert memo.hits == 1 and memo.misses == 1

    def test_memo_shared_across_simulators(self, memo, toy_model, toy_trace):
        a = make_sim(toy_model, memo).simulate(toy_trace, POOL)
        b = make_sim(toy_model, memo).simulate(toy_trace, POOL)
        assert a is b

    def test_results_identical_to_memoless(self, memo, toy_model, toy_trace):
        memoized = make_sim(toy_model, memo).simulate(toy_trace, POOL)
        plain = make_sim(
            toy_model, SimulationResultCache(maxsize=0)
        ).simulate(toy_trace, POOL)
        np.testing.assert_array_equal(memoized.latency_s, plain.latency_s)
        np.testing.assert_array_equal(memoized.wait_s, plain.wait_s)
        np.testing.assert_array_equal(memoized.instance_index, plain.instance_index)
        np.testing.assert_array_equal(
            memoized.queue_len_at_arrival, plain.queue_len_at_arrival
        )
        assert memoized.makespan_s == plain.makespan_s

    def test_cached_result_arrays_are_read_only(self, memo, toy_model, toy_trace):
        res = make_sim(toy_model, memo).simulate(toy_trace, POOL)
        with pytest.raises(ValueError):
            res.latency_s[0] = 0.0
        with pytest.raises(ValueError):
            res.queue_len_at_arrival[0] = 99

    def test_distinct_pools_are_distinct_entries(self, memo, toy_model, toy_trace):
        sim = make_sim(toy_model, memo)
        sim.simulate(toy_trace, POOL)
        sim.simulate(toy_trace, PoolConfiguration(("g4dn", "t3"), (2, 1)))
        assert len(memo) == 2
        assert memo.misses == 2

    def test_track_queue_is_part_of_the_key(self, memo, toy_model, toy_trace):
        with_q = make_sim(toy_model, memo, track_queue=True).simulate(toy_trace, POOL)
        without_q = make_sim(toy_model, memo, track_queue=False).simulate(
            toy_trace, POOL
        )
        assert len(memo) == 2
        assert with_q.queue_len_at_arrival.size == len(toy_trace)
        assert without_q.queue_len_at_arrival.size == 0

    def test_dispatch_path_is_not_part_of_the_key(self, memo, toy_model, toy_trace):
        # Both paths are bit-identical by contract, so the memo may hand a
        # linear-scan result to a heap-dispatch simulator.
        a = make_sim(toy_model, memo, dispatch="linear").simulate(toy_trace, POOL)
        b = make_sim(toy_model, memo, dispatch="heap").simulate(toy_trace, POOL)
        assert a is b

    def test_distinct_traces_are_distinct_entries(self, memo, toy_model):
        sim = make_sim(toy_model, memo)
        # Keep the traces alive: a dead trace's entries are weakref-evicted.
        t1 = make_toy_trace(toy_model, n=50, seed=1)
        t2 = make_toy_trace(toy_model, n=50, seed=2)
        sim.simulate(t1, POOL)
        sim.simulate(t2, POOL)
        assert len(memo) == 2

    def test_lru_eviction_counts(self, toy_model):
        memo = SimulationResultCache(maxsize=2)
        sim = make_sim(toy_model, memo)
        traces = [make_toy_trace(toy_model, n=20, seed=s) for s in range(3)]
        for t in traces:
            sim.simulate(t, POOL)
        assert len(memo) == 2
        assert memo.evictions == 1
        # The oldest entry was evicted: asking again re-simulates.
        misses = memo.misses
        sim.simulate(traces[0], POOL)
        assert memo.misses == misses + 1

    def test_entries_dropped_when_trace_is_garbage_collected(self, toy_model):
        memo = SimulationResultCache(maxsize=8)
        sim = make_sim(toy_model, memo)
        trace = make_toy_trace(toy_model, n=20, seed=3)
        sim.simulate(trace, POOL)
        assert len(memo) == 1
        del trace
        gc.collect()
        assert len(memo) == 0
        assert memo.evictions == 1

    def test_maxsize_zero_disables_memoization(self, toy_model, toy_trace):
        memo = SimulationResultCache(maxsize=0)
        assert not memo.enabled
        sim = make_sim(toy_model, memo)
        a = sim.simulate(toy_trace, POOL)
        b = sim.simulate(toy_trace, POOL)
        assert a is not b
        np.testing.assert_array_equal(a.latency_s, b.latency_s)
        assert len(memo) == 0
        assert memo.hits == 0 and memo.misses == 0

    def test_stats_snapshot(self, memo, toy_model, toy_trace):
        sim = make_sim(toy_model, memo)
        res = sim.simulate(toy_trace, POOL)
        sim.simulate(toy_trace, POOL)
        stats = memo.stats()
        assert stats.pop("bytes") > 0
        assert stats.pop("max_bytes") == memo.max_bytes
        assert stats == {
            "hits": 1,
            "misses": 1,
            "evictions": 0,
            "size": 1,
            "maxsize": 8,
        }
        assert memo.total_bytes >= res.latency_s.nbytes

    def test_byte_budget_evicts_lru(self, toy_model):
        t1 = make_toy_trace(toy_model, n=50, seed=1)
        t2 = make_toy_trace(toy_model, n=50, seed=2)
        probe = SimulationResultCache(maxsize=8)
        make_sim(toy_model, probe).simulate(t1, POOL)
        one_entry = probe.total_bytes
        # Room for one entry but not two: the second insert evicts the first.
        memo = SimulationResultCache(maxsize=8, max_bytes=int(1.5 * one_entry))
        sim = make_sim(toy_model, memo)
        sim.simulate(t1, POOL)
        sim.simulate(t2, POOL)
        assert len(memo) == 1
        assert memo.evictions == 1
        assert memo.total_bytes == one_entry
        # t2 (the newest) survived; t1 re-simulates.
        misses = memo.misses
        sim.simulate(t2, POOL)
        assert memo.misses == misses
        sim.simulate(t1, POOL)
        assert memo.misses == misses + 1

    def test_single_over_budget_entry_is_kept(self, toy_model, toy_trace):
        memo = SimulationResultCache(maxsize=8, max_bytes=1)
        sim = make_sim(toy_model, memo)
        a = sim.simulate(toy_trace, POOL)
        # Over budget but the only entry: evicting it would just force an
        # immediate re-simulation, so it stays (and still serves hits).
        assert len(memo) == 1
        assert sim.simulate(toy_trace, POOL) is a

    def test_invalid_max_bytes_rejected(self):
        with pytest.raises(ValueError):
            SimulationResultCache(max_bytes=-1)

    def test_invalid_maxsize_rejected(self):
        with pytest.raises(ValueError):
            SimulationResultCache(maxsize=-1)

    def test_memo_is_collectable_despite_long_lived_tracked_objects(self):
        """Finalizers must not pin the memo while zoo models live forever."""
        import weakref

        from repro.models.zoo import get_model
        from tests.conftest import make_toy_model

        model = get_model("MT-WND")  # process-lifetime singleton
        toy = make_toy_model()
        trace = make_toy_trace(toy, n=20, seed=4)
        memo = SimulationResultCache()
        memo.put(model, trace, ("g4dn",), (1,), True, make_sim(
            toy, SimulationResultCache(maxsize=0)
        ).simulate(trace, PoolConfiguration(("g4dn",), (1,))))
        ref = weakref.ref(memo)
        del memo
        gc.collect()
        assert ref() is None

    def test_concurrent_threads_share_one_memo(self, toy_model, toy_trace):
        memo = SimulationResultCache(maxsize=8)
        barrier = threading.Barrier(6)

        def hammer(_):
            sim = make_sim(toy_model, memo)
            barrier.wait()
            return sim.simulate(toy_trace, POOL)

        with ThreadPoolExecutor(max_workers=6) as pool:
            results = list(pool.map(hammer, range(6)))
        # One canonical entry; every thread observed an equal result and
        # each lookup counted exactly one hit or miss.
        assert len(memo) == 1
        assert memo.hits + memo.misses == 6
        for res in results[1:]:
            np.testing.assert_array_equal(res.latency_s, results[0].latency_s)


class TestEngineAndEvaluatorWiring:
    def test_default_is_the_shared_memo(self, toy_model):
        sim = InferenceServingSimulator(toy_model)
        assert sim.result_cache is shared_simulation_cache()

    def test_reference_engine_stays_independent(self, memo, toy_model, toy_trace):
        # The event-heap engine must keep simulating from scratch — it
        # cross-validates the fast engine, so handing it memoized fast-path
        # results would make the equivalence suite vacuous.
        fast = make_sim(toy_model, memo).simulate(toy_trace, POOL)
        ref = EventHeapSimulator(toy_model).simulate(toy_trace, POOL)
        assert memo.hits == 0  # the reference run never touched the memo
        np.testing.assert_allclose(fast.latency_s, ref.latency_s, rtol=0, atol=0)

    def test_memo_hit_skips_dispatch(self, memo, toy_model, toy_trace, monkeypatch):
        sim = make_sim(toy_model, memo)
        first = sim.simulate(toy_trace, POOL)

        def boom(*args, **kwargs):  # pragma: no cover - must not run
            raise AssertionError("dispatch ran despite a memo hit")

        monkeypatch.setattr(sim, "_run_linear", boom)
        monkeypatch.setattr(sim, "_run_heap", boom)
        assert sim.simulate(toy_trace, POOL) is first

    def test_evaluator_forks_share_the_memo(self, memo, toy_model, toy_trace, toy_space):
        objective = RibbonObjective(toy_space, qos_rate_target=0.95)
        parent = ConfigurationEvaluator(
            toy_model, toy_trace, objective, result_cache=memo
        )
        parent.evaluate(toy_space.pool((1, 2)))
        assert memo.misses == 1
        # A fork on the *same* trace (run_many's fresh_evaluator pattern)
        # re-evaluates for free.
        fork = parent.fork(toy_trace)
        rec = fork.evaluate(toy_space.pool((1, 2)))
        assert memo.hits == 1 and memo.misses == 1
        assert rec.qos_rate == parent.history[0].qos_rate
        # A fork on a different trace is a distinct workload.
        other = parent.fork(make_toy_trace(toy_model, n=60, seed=11))
        other.evaluate(toy_space.pool((1, 2)))
        assert memo.misses == 2

    def test_memoized_search_is_bit_identical(self, toy_model, toy_trace, toy_space):
        from repro.core.optimizer import RibbonOptimizer

        objective = RibbonObjective(toy_space, qos_rate_target=0.95)

        def run(result_cache):
            evaluator = ConfigurationEvaluator(
                toy_model, toy_trace, objective, result_cache=result_cache
            )
            return RibbonOptimizer(max_samples=15, seed=3).search(evaluator)

        plain = run(SimulationResultCache(maxsize=0))
        memo = SimulationResultCache()
        cold = run(memo)  # populates the memo
        warm = run(memo)  # every simulation is a hit
        assert memo.hits > 0
        for res in (cold, warm):
            assert [r.pool.counts for r in res.history] == [
                r.pool.counts for r in plain.history
            ]
            assert [r.qos_rate for r in res.history] == [
                r.qos_rate for r in plain.history
            ]
            assert res.best.pool.counts == plain.best.pool.counts
            assert res.best.cost_per_hour == plain.best.cost_per_hour


SWEEP = Scenario(
    model="MT-WND",
    workload=WorkloadSpec(n_queries=600, seed=1),
    pool=PoolSpec(families=("g4dn", "c5"), bounds=(5, 6)),
    budget=EvaluationBudget(max_samples=8),
)

SEEDS = (0, 1, 2, 3)


def _fingerprint(result):
    return (
        result.best.pool.counts if result.best else None,
        result.best.cost_per_hour if result.best else None,
        [r.pool.counts for r in result.history],
        [r.qos_rate for r in result.history],
    )


def _isolated_runner(maxsize):
    # Isolated caches so assertions on hit counts are not polluted by
    # other tests sharing the process-wide instances.
    return ScenarioRunner(
        SWEEP,
        service_cache=ServiceTimeCache(),
        simulation_cache=SimulationResultCache(maxsize=maxsize),
    )


class TestRunManyUnderTheMemo:
    def test_sweep_reuses_simulations_across_seeds(self):
        runner = _isolated_runner(256)
        runner.run_many("ribbon", seeds=SEEDS)
        stats = runner.cache_stats()
        # The pinned workload makes every seed search the same trace, so
        # overlapping configurations across seeds must hit the memo.
        assert stats["simulation"]["hits"] > 0
        assert stats["simulation"]["misses"] > 0
        assert stats["service"]["misses"] == 1  # one workload, one matrix

    def test_serial_parallel_and_memoless_all_agree(self):
        memoless = _isolated_runner(0).run_many("ribbon", seeds=SEEDS)
        serial = _isolated_runner(256).run_many("ribbon", seeds=SEEDS)
        parallel_runner = _isolated_runner(256)
        parallel = parallel_runner.run_many("ribbon", seeds=SEEDS, parallel=True)
        assert parallel_runner.cache_stats()["simulation"]["hits"] > 0
        for seed in SEEDS:
            assert _fingerprint(serial[seed]) == _fingerprint(memoless[seed])
            assert _fingerprint(parallel[seed]) == _fingerprint(memoless[seed])

    def test_opt_out_runner_never_memoizes(self):
        runner = _isolated_runner(0)
        runner.run_many("random", seeds=(0, 1))
        stats = runner.cache_stats()
        assert stats["simulation"]["hits"] == 0
        assert stats["simulation"]["misses"] == 0
        assert stats["simulation"]["size"] == 0

    def test_fork_propagates_the_memo(self):
        runner = _isolated_runner(256)
        forked = runner.fork(load_factor=1.2)
        assert forked.simulation_cache is runner.simulation_cache
        assert forked.service_cache is runner.service_cache

    def test_cache_stats_shape(self):
        stats = _isolated_runner(64).cache_stats()
        assert set(stats) == {"simulation", "service", "dispatch"}
        for name in ("simulation", "service"):
            assert {"hits", "misses", "evictions", "size", "maxsize"} <= set(
                stats[name]
            )
        assert {
            "linear",
            "heap",
            "vector",
            "vector_hetero",
            "vector_fallback",
            "vector_fallback_hetero",
            "vector_fallback_crossover",
            "vector_fallback_tie_screen",
        } == set(stats["dispatch"])
