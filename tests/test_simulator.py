"""Unit tests for the FCFS serving engine (hand-computed scenarios)."""

import numpy as np
import pytest

from repro.cloud.catalog import InstanceCatalog
from repro.cloud.instance_types import InstanceCategory, InstanceSpec
from repro.models.base import LatencyProfile, ModelCategory, ModelProfile
from repro.simulator.engine import InferenceServingSimulator
from repro.simulator.pool import PoolConfiguration
from repro.simulator.service import service_time_matrix
from repro.workload.trace import QueryTrace
from tests.conftest import make_toy_model, make_toy_trace

_DET_CATALOG = InstanceCatalog(
    [
        InstanceSpec(
            name="fast.large", family="fast", size="large",
            category=InstanceCategory.COMPUTE_OPTIMIZED,
            vcpus=2, memory_gib=8.0, price_per_hour=1.0,
        ),
        InstanceSpec(
            name="slow.large", family="slow", size="large",
            category=InstanceCategory.GENERAL_PURPOSE,
            vcpus=2, memory_gib=8.0, price_per_hour=0.2,
        ),
    ]
)


def det_model(fast_ms=10.0, slow_ms=30.0) -> ModelProfile:
    """Deterministic constant-latency model for hand-checked scenarios."""
    return ModelProfile(
        name="det",
        category=ModelCategory.GENERAL,
        description="deterministic test model",
        qos_target_ms=100.0,
        profiles={
            "fast": LatencyProfile(fast_ms, 0.0),
            "slow": LatencyProfile(slow_ms, 0.0),
        },
        arrival_rate_qps=10.0,
        batch_median=8.0,
        batch_sigma=0.5,
        max_batch=64,
        homogeneous_family="fast",
        diverse_pool=("fast", "slow"),
        catalog=_DET_CATALOG,
    )


def trace(arrivals, batches=None):
    arrivals = np.asarray(arrivals, dtype=float)
    if batches is None:
        batches = np.ones(len(arrivals), dtype=np.int64)
    return QueryTrace(arrivals, np.asarray(batches), rate_qps=1.0, seed=0)


class TestSingleServer:
    def test_no_contention(self):
        m = det_model(fast_ms=10.0)
        sim = InferenceServingSimulator(m)
        res = sim.simulate(trace([0.0, 0.1, 0.2]), PoolConfiguration.homogeneous("fast", 1))
        np.testing.assert_allclose(res.latency_s, [0.01, 0.01, 0.01])
        np.testing.assert_allclose(res.wait_s, 0.0)

    def test_back_to_back_queueing(self):
        # Three arrivals at t=0; service 10ms each; one server.
        m = det_model(fast_ms=10.0)
        sim = InferenceServingSimulator(m)
        res = sim.simulate(trace([0.0, 0.0, 0.0]), PoolConfiguration.homogeneous("fast", 1))
        np.testing.assert_allclose(sorted(res.latency_s), [0.01, 0.02, 0.03])
        assert res.makespan_s == pytest.approx(0.03)

    def test_arrival_exactly_at_completion_needs_no_wait(self):
        m = det_model(fast_ms=10.0)
        sim = InferenceServingSimulator(m)
        res = sim.simulate(trace([0.0, 0.01]), PoolConfiguration.homogeneous("fast", 1))
        np.testing.assert_allclose(res.wait_s, [0.0, 0.0])


class TestHeterogeneousDispatch:
    def test_type_order_preference_when_both_free(self):
        m = det_model()
        sim = InferenceServingSimulator(m)
        pool = PoolConfiguration(("fast", "slow"), (1, 1))
        res = sim.simulate(trace([0.0]), pool)
        # Single query goes to the first family in type order.
        assert res.instance_family[int(res.instance_index[0])] == "fast"
        assert res.latency_s[0] == pytest.approx(0.010)

    def test_overflow_goes_to_slow_instance(self):
        m = det_model()
        sim = InferenceServingSimulator(m)
        pool = PoolConfiguration(("fast", "slow"), (1, 1))
        res = sim.simulate(trace([0.0, 0.001]), pool)
        fams = [res.instance_family[int(i)] for i in res.instance_index]
        assert fams == ["fast", "slow"]
        # Second query: no wait (slow server free), 30ms service.
        assert res.latency_s[1] == pytest.approx(0.030)

    def test_fcfs_waits_for_earliest_free(self):
        # Two fast servers busy until 10ms/20ms; third query at t=1ms waits
        # for the earliest (10ms) and starts there.
        m = det_model(fast_ms=10.0)
        sim = InferenceServingSimulator(m)
        pool = PoolConfiguration.homogeneous("fast", 2)
        res = sim.simulate(trace([0.0, 0.0, 0.001]), pool)
        assert res.wait_s[2] == pytest.approx(0.009)

    def test_queries_served_in_arrival_order(self):
        m = det_model(fast_ms=10.0)
        sim = InferenceServingSimulator(m)
        res = sim.simulate(trace([0.0, 0.001, 0.002, 0.003]), PoolConfiguration.homogeneous("fast", 1))
        starts = res.latency_s + np.asarray([0.0, 0.001, 0.002, 0.003]) - res.service_s
        assert np.all(np.diff(starts) >= -1e-12)


class TestAccounting:
    def test_latency_decomposition(self, toy_model, toy_trace):
        sim = InferenceServingSimulator(toy_model)
        res = sim.simulate(toy_trace, PoolConfiguration(("g4dn", "t3"), (2, 2)))
        np.testing.assert_allclose(res.latency_s, res.wait_s + res.service_s)
        assert np.all(res.wait_s >= -1e-12)

    def test_all_queries_served(self, toy_model, toy_trace):
        sim = InferenceServingSimulator(toy_model)
        res = sim.simulate(toy_trace, PoolConfiguration(("g4dn", "t3"), (2, 2)))
        assert len(res) == len(toy_trace)

    def test_busy_time_sums_to_service_time(self, toy_model, toy_trace):
        sim = InferenceServingSimulator(toy_model)
        res = sim.simulate(toy_trace, PoolConfiguration(("g4dn", "t3"), (2, 2)))
        assert res.busy_s_per_instance.sum() == pytest.approx(res.service_s.sum())

    def test_utilization_within_unit_interval(self, toy_model, toy_trace):
        sim = InferenceServingSimulator(toy_model)
        res = sim.simulate(toy_trace, PoolConfiguration(("g4dn", "t3"), (2, 2)))
        u = res.utilization()
        assert np.all(u >= 0.0) and np.all(u <= 1.0 + 1e-9)

    def test_family_share_sums_to_one(self, toy_model, toy_trace):
        sim = InferenceServingSimulator(toy_model)
        res = sim.simulate(toy_trace, PoolConfiguration(("g4dn", "t3"), (2, 2)))
        assert sum(res.family_share().values()) == pytest.approx(1.0)

    def test_queue_tracking_toggle(self, toy_model, toy_trace):
        pool = PoolConfiguration(("g4dn", "t3"), (1, 1))
        with_q = InferenceServingSimulator(toy_model, track_queue=True).simulate(toy_trace, pool)
        without_q = InferenceServingSimulator(toy_model, track_queue=False).simulate(toy_trace, pool)
        assert with_q.queue_len_at_arrival.size == len(toy_trace)
        assert without_q.queue_len_at_arrival.size == 0
        np.testing.assert_allclose(with_q.latency_s, without_q.latency_s)

    def test_overloaded_pool_queue_grows(self, toy_model):
        # One t3 serving 400 QPS is far beyond capacity: queue must grow.
        t = make_toy_trace(toy_model, n=600, seed=3)
        sim = InferenceServingSimulator(toy_model)
        res = sim.simulate(t, PoolConfiguration.homogeneous("t3", 1))
        assert res.max_queue_length > 10
        assert res.mean_wait_ms > 10.0


class TestErrors:
    def test_empty_pool_rejected(self, toy_model, toy_trace):
        sim = InferenceServingSimulator(toy_model)
        with pytest.raises(ValueError, match="empty pool"):
            sim.simulate(toy_trace, PoolConfiguration(("g4dn",), (0,)))

    def test_unknown_family_rejected(self, toy_model, toy_trace):
        sim = InferenceServingSimulator(toy_model)
        with pytest.raises(KeyError, match="no profile"):
            sim.simulate(toy_trace, PoolConfiguration(("m5",), (1,)))


class TestServiceMatrix:
    def test_noiseless_matches_profile(self, toy_model, toy_trace):
        mat = service_time_matrix(toy_model, toy_trace, ("g4dn", "t3"))
        expected = np.asarray(toy_model.service_time_s("g4dn", toy_trace.batch_sizes))
        np.testing.assert_allclose(mat[0], expected)

    def test_noise_is_deterministic_per_trace_and_family(self):
        m = make_toy_model(noise=0.2)
        t = make_toy_trace(m, n=200)
        a = service_time_matrix(m, t, ("g4dn", "t3"))
        b = service_time_matrix(m, t, ("g4dn", "t3"))
        np.testing.assert_allclose(a, b)

    def test_noise_independent_of_family_position(self):
        m = make_toy_model(noise=0.2)
        t = make_toy_trace(m, n=200)
        a = service_time_matrix(m, t, ("g4dn", "t3"))
        b = service_time_matrix(m, t, ("t3", "g4dn"))
        np.testing.assert_allclose(a[0], b[1])
        np.testing.assert_allclose(a[1], b[0])

    def test_noise_is_mean_one(self):
        m = make_toy_model(noise=0.3)
        t = make_toy_trace(m, n=20_000, seed=11)
        mat = service_time_matrix(m, t, ("g4dn",))
        nominal = np.asarray(m.service_time_s("g4dn", t.batch_sizes))
        ratio = mat[0] / nominal
        assert np.mean(ratio) == pytest.approx(1.0, rel=0.03)
