"""Unit tests for search results and the shared strategy budget."""

import pytest

from repro.core.evaluator import EvaluationRecord
from repro.core.result import SearchResult
from repro.core.strategy import Budget
from repro.simulator.pool import PoolConfiguration


def rec(counts, rate, cost, meets, idx=0):
    return EvaluationRecord(
        pool=PoolConfiguration(("g4dn", "t3"), counts),
        qos_rate=rate,
        cost_per_hour=cost,
        objective=rate,
        meets_qos=meets,
        sample_index=idx,
        p99_ms=10.0,
        mean_queue_length=0.0,
    )


def result(history, method="X"):
    meeting = [r for r in history if r.meets_qos]
    best = min(meeting, key=lambda r: r.cost_per_hour) if meeting else None
    return SearchResult(
        method=method,
        best=best,
        history=tuple(history),
        exploration_cost_dollars=1.0,
        exhaustive_cost_dollars=10.0,
    )


HISTORY = [
    rec((5, 0), 0.999, 2.63, True, 0),
    rec((4, 0), 0.95, 2.10, False, 1),
    rec((3, 4), 0.992, 2.24, True, 2),
    rec((2, 4), 0.98, 1.72, False, 3),
]


class TestSearchResult:
    def test_counters(self):
        res = result(HISTORY)
        assert res.n_samples == 4
        assert res.n_violating_samples == 2
        assert res.found_qos_config
        assert res.best_cost == pytest.approx(2.24)

    def test_exploration_cost_fraction(self):
        assert result(HISTORY).exploration_cost_fraction() == pytest.approx(0.1)

    def test_samples_to_cost(self):
        res = result(HISTORY)
        assert res.samples_to_cost(2.63) == 1
        assert res.samples_to_cost(2.24) == 3
        assert res.samples_to_cost(1.0) is None

    def test_samples_to_saving(self):
        res = result(HISTORY)
        # 2.63 baseline, 14.8% saving -> target 2.24.
        assert res.samples_to_saving(2.63, 14.8) == 3
        with pytest.raises(ValueError):
            res.samples_to_saving(0.0, 10.0)

    def test_best_cost_curve(self):
        curve = result(HISTORY).best_cost_curve()
        assert curve == pytest.approx([2.63, 2.63, 2.24, 2.24])

    def test_violations_before_sample(self):
        res = result(HISTORY)
        assert res.violations_before_sample(2) == 1
        assert res.violations_before_sample(4) == 2

    def test_samples_to_best(self):
        assert result(HISTORY).samples_to_best() == 3

    def test_empty_result(self):
        res = result([rec((1, 0), 0.5, 0.53, False)])
        assert not res.found_qos_config
        assert res.best_cost == float("inf")
        assert res.samples_to_best() is None
        assert res.best_cost_curve() == [float("inf")]

    def test_summary_mentions_method_and_best(self):
        s = result(HISTORY, method="RIBBON").summary()
        assert "RIBBON" in s and "3 g4dn + 4 t3" in s


class TestBudget:
    def test_window_tracks_only_this_search(self, toy_evaluator, toy_space):
        b1 = Budget(toy_evaluator, max_samples=5)
        b1.evaluate(toy_space.pool((2, 2)))
        b2 = Budget(toy_evaluator, max_samples=5)
        # Same config: cache hit on the evaluator but still a sample for b2.
        b2.evaluate(toy_space.pool((2, 2)))
        assert b1.n_samples == 1
        assert b2.n_samples == 1
        assert toy_evaluator.n_evaluations == 1

    def test_revisits_within_search_are_free(self, toy_evaluator, toy_space):
        b = Budget(toy_evaluator, max_samples=5)
        pool = toy_space.pool((1, 1))
        b.evaluate(pool)
        b.evaluate(pool)
        assert b.n_samples == 1
        assert b.seen(pool)

    def test_budget_exhaustion_returns_none(self, toy_evaluator, toy_space):
        b = Budget(toy_evaluator, max_samples=1)
        assert b.evaluate(toy_space.pool((1, 0))) is not None
        assert b.evaluate(toy_space.pool((0, 1))) is None
        assert b.exhausted
        assert b.remaining == 0

    def test_best_satisfying_windowed(self, toy_evaluator, toy_space):
        # Evaluate a satisfier through another budget first.
        pre = Budget(toy_evaluator, max_samples=5)
        pre.evaluate(toy_space.pool((4, 6)))
        b = Budget(toy_evaluator, max_samples=5)
        b.evaluate(toy_space.pool((0, 1)))
        assert b.best_satisfying() is None  # the satisfier is not in b's window
