"""The vector dispatch substrate's bit-identical contract.

The NumPy busy-period kernels (:mod:`repro.simulator.vector_kernel`) must
reproduce the scalar dispatch loops *bit for bit* — every latency, every
chosen instance index, every busy second, every queue length — on every
pool shape they serve.  These property tests drive randomized pools and
traces through the kernel-vs-scalar comparison, pin the adversarial
regimes called out in the kernels' correctness arguments (saturation,
idleness, arrival ties, zero service times, single-query traces, 30+
instance homogeneous pools), and prove that a full search under
``dispatch="vector"`` returns the same ``SearchResult`` — golden-tested
against the recorded bench sequences — as the scalar substrates.

Engagement is tested too: the dispatch counters must show the vector
kernels actually ran where the policy promises them — including the
grouped-family heterogeneous kernel (``vector_hetero``) — and every
disengagement must be visible as ``vector_fallback`` plus its reason.
"""

import json
import pathlib

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.api import EvaluationBudget, PoolSpec, Scenario, ScenarioRunner, WorkloadSpec
from repro.core.evaluator import ConfigurationEvaluator
from repro.core.objective import RibbonObjective
from repro.core.optimizer import RibbonOptimizer
from repro.core.search_space import SearchSpace
from repro.models.base import LatencyProfile
from repro.simulator.engine import InferenceServingSimulator
from repro.simulator.pool import PoolConfiguration
from repro.simulator.result_cache import SimulationResultCache
from repro.simulator.vector_kernel import homogeneous_pool, lindley_single
from repro.workload.trace import QueryTrace
from tests.conftest import make_toy_model, make_toy_trace

BENCH_JSON = pathlib.Path(__file__).resolve().parent.parent / "BENCH_search_core.json"


def sim(model, dispatch, **kwargs) -> InferenceServingSimulator:
    """A simulator with the whole-result memo disabled (A/B comparisons
    must actually re-dispatch, not replay the first run)."""
    return InferenceServingSimulator(
        model,
        dispatch=dispatch,
        result_cache=SimulationResultCache(maxsize=0),
        **kwargs,
    )


def rate_trace(seed: int, n: int, rate: float) -> QueryTrace:
    rng = np.random.default_rng(seed)
    arrivals = np.cumsum(rng.exponential(1.0 / rate, size=n))
    batches = np.clip(
        np.rint(rng.lognormal(np.log(30.0), 0.8, size=n)), 1, 256
    ).astype(np.int64)
    return QueryTrace(arrivals, batches, rate_qps=rate, seed=seed)


def assert_identical(a, b, tag=""):
    """Every SimulationResult field, bit for bit."""
    np.testing.assert_array_equal(a.latency_s, b.latency_s, err_msg=f"{tag} latency")
    np.testing.assert_array_equal(a.wait_s, b.wait_s, err_msg=f"{tag} wait")
    np.testing.assert_array_equal(a.service_s, b.service_s, err_msg=f"{tag} service")
    np.testing.assert_array_equal(
        a.instance_index, b.instance_index, err_msg=f"{tag} instance"
    )
    np.testing.assert_array_equal(
        a.busy_s_per_instance, b.busy_s_per_instance, err_msg=f"{tag} busy"
    )
    np.testing.assert_array_equal(
        a.queue_len_at_arrival, b.queue_len_at_arrival, err_msg=f"{tag} queue"
    )
    assert a.makespan_s == b.makespan_s, f"{tag} makespan"


def assert_vector_matches_scalar(model, trace, pool):
    vec = sim(model, "vector").simulate(trace, pool)
    ref = sim(
        model, "linear" if pool.total_instances == 1 else "heap"
    ).simulate(trace, pool)
    assert_identical(vec, ref, str(pool))


# -- randomized pools across the load range -----------------------------------


@given(
    seed=st.integers(0, 10_000),
    n=st.integers(1, 400),
    rate=st.floats(5.0, 3000.0),
)
@settings(max_examples=40, deadline=None)
def test_vector_single_instance_random_workloads(seed, n, rate):
    model = make_toy_model(noise={"g4dn": 0.1, "t3": 0.2, "c5": 0.15})
    trace = rate_trace(seed, n, rate)
    assert_vector_matches_scalar(
        model, trace, PoolConfiguration.homogeneous("g4dn", 1)
    )


@given(
    seed=st.integers(0, 10_000),
    m=st.integers(2, 34),
    rate=st.floats(5.0, 3000.0),
)
@settings(max_examples=40, deadline=None)
def test_vector_homogeneous_random_pools(seed, m, rate):
    model = make_toy_model(noise={"g4dn": 0.1, "t3": 0.2, "c5": 0.15})
    trace = rate_trace(seed, 300, rate)
    assert_vector_matches_scalar(
        model, trace, PoolConfiguration.homogeneous("t3", m)
    )


@given(seed=st.integers(0, 10_000), m=st.integers(30, 40))
@settings(max_examples=10, deadline=None)
def test_vector_large_homogeneous_saturated(seed, m):
    """30+-instance pools under load far beyond capacity: queues thousands
    deep, the homogeneous kernel's target regime."""
    model = make_toy_model(noise={"g4dn": 0.05, "t3": 0.2, "c5": 0.1})
    trace = rate_trace(seed, 600, 20_000.0)
    assert_vector_matches_scalar(
        model, trace, PoolConfiguration.homogeneous("g4dn", m)
    )


@given(seed=st.integers(0, 10_000))
@settings(max_examples=10, deadline=None)
def test_vector_idle_traces(seed):
    """Near-zero load: every busy period is a single query."""
    model = make_toy_model()
    trace = rate_trace(seed, 200, 2.0)
    for pool in (
        PoolConfiguration.homogeneous("g4dn", 1),
        PoolConfiguration.homogeneous("t3", 6),
    ):
        assert_vector_matches_scalar(model, trace, pool)


# -- adversarial edges ---------------------------------------------------------


def _tied_trace(n: int = 120) -> QueryTrace:
    """Heavy arrival ties: every timestamp is shared by a burst."""
    arrivals = np.repeat(np.arange(n // 4, dtype=float) * 0.004, 4)
    batches = np.full(n, 30, dtype=np.int64)
    return QueryTrace(arrivals, batches, rate_qps=1000.0, seed=11)


def test_vector_arrival_ties():
    model = make_toy_model()
    for pool in (
        PoolConfiguration.homogeneous("g4dn", 1),
        PoolConfiguration.homogeneous("g4dn", 3),
        PoolConfiguration.homogeneous("t3", 8),
    ):
        assert_vector_matches_scalar(model, _tied_trace(), pool)


def test_vector_zero_service_times():
    """A zero-latency profile makes every finish tie its start — the
    kernels' strict screens must push all of it onto the exact scalar
    steps without drifting from the reference."""
    model = make_toy_model()
    zero_profiles = dict(model.profiles)
    zero_profiles["t3"] = LatencyProfile(0.0, 0.0)
    import dataclasses

    model = dataclasses.replace(model, profiles=zero_profiles)
    trace = rate_trace(3, 150, 500.0)
    for pool in (
        PoolConfiguration.homogeneous("t3", 1),
        PoolConfiguration.homogeneous("t3", 4),
    ):
        assert_vector_matches_scalar(model, trace, pool)


def test_vector_single_query_trace():
    model = make_toy_model()
    trace = rate_trace(5, 1, 100.0)
    for pool in (
        PoolConfiguration.homogeneous("g4dn", 1),
        PoolConfiguration.homogeneous("g4dn", 5),
    ):
        assert_vector_matches_scalar(model, trace, pool)


def test_vector_kernels_reject_nothing_silently():
    """Raw kernel edge: empty input arrays."""
    empty = np.empty(0, dtype=float)
    starts, finishes, busy, queue = lindley_single(empty, empty, True)
    assert starts.size == finishes.size == queue.size == 0 and busy == 0.0
    starts, chosen, busy, queue, makespan = homogeneous_pool(empty, empty, 3, True)
    assert starts.size == chosen.size == queue.size == 0
    assert makespan == 0.0 and np.all(busy == 0.0)


# -- heterogeneous pools: the grouped-family kernel ----------------------------


def bursty_trace(seed: int, n: int, rate: float) -> QueryTrace:
    """Adversarial arrival law: dense clumps of exact arrival ties
    separated by long silences — the regime that stresses saturated-block
    truncation and the fresh-start burst fill at once."""
    rng = np.random.default_rng(seed)
    gaps = rng.exponential(1.0 / rate, size=n)
    gaps[rng.random(n) < 0.4] = 0.0  # exact ties inside a clump
    gaps[rng.random(n) < 0.08] *= 50.0  # silences between clumps
    arrivals = np.cumsum(gaps)
    batches = np.clip(
        np.rint(rng.lognormal(np.log(30.0), 0.8, size=n)), 1, 256
    ).astype(np.int64)
    return QueryTrace(arrivals, batches, rate_qps=rate, seed=seed)


@given(
    seed=st.integers(0, 10_000),
    c1=st.integers(1, 8),
    c2=st.integers(1, 8),
    c3=st.integers(0, 8),
    rate=st.floats(5.0, 3000.0),
)
@settings(max_examples=40, deadline=None)
def test_vector_heterogeneous_random_pools(seed, c1, c2, c3, rate):
    """Mixed 2-3 family pools across the load range: the grouped-family
    kernel must match the heap bit for bit."""
    model = make_toy_model(noise={"g4dn": 0.1, "t3": 0.2, "c5": 0.15})
    trace = rate_trace(seed, 300, rate)
    families, counts = ("g4dn", "t3"), (c1, c2)
    if c3:
        families, counts = ("g4dn", "t3", "c5"), (c1, c2, c3)
    assert_vector_matches_scalar(
        model, trace, PoolConfiguration(families, counts)
    )


def test_vector_hetero_arrival_ties_across_families():
    """Tied arrivals landing on instances of different families: label
    choices matter for every service time, and the certification must
    still resolve them exactly."""
    model = make_toy_model()
    for pool in (
        PoolConfiguration(("g4dn", "t3"), (2, 2)),
        PoolConfiguration(("g4dn", "t3", "c5"), (3, 2, 3)),
    ):
        assert_vector_matches_scalar(model, _tied_trace(), pool)


def test_vector_hetero_equal_service_times():
    """Identical latency profiles in every family: finish times tie
    across family boundaries constantly, so the grouped-family kernel's
    screens must reject ambiguous blocks and take exact scalar steps
    rather than guess a label."""
    import dataclasses

    model = make_toy_model()
    same = {f: LatencyProfile(1.0, 0.1) for f in model.profiles}
    model = dataclasses.replace(model, profiles=same)
    trace = rate_trace(9, 200, 800.0)
    assert_vector_matches_scalar(
        model, trace, PoolConfiguration(("g4dn", "t3", "c5"), (2, 2, 2))
    )


def test_vector_hetero_zero_service_times():
    """One zero-latency family inside a mixed pool: every pop of a 't3'
    instance ties its own start."""
    import dataclasses

    model = make_toy_model()
    zero = dict(model.profiles)
    zero["t3"] = LatencyProfile(0.0, 0.0)
    model = dataclasses.replace(model, profiles=zero)
    trace = rate_trace(3, 150, 500.0)
    assert_vector_matches_scalar(
        model, trace, PoolConfiguration(("g4dn", "t3"), (2, 3))
    )


@given(seed=st.integers(0, 10_000))
@settings(max_examples=15, deadline=None)
def test_vector_bursty_clumped_arrivals(seed):
    model = make_toy_model(noise={"g4dn": 0.1, "t3": 0.2, "c5": 0.15})
    trace = bursty_trace(seed, 300, 600.0)
    for pool in (
        PoolConfiguration.homogeneous("t3", 6),
        PoolConfiguration(("g4dn", "t3", "c5"), (2, 3, 2)),
    ):
        assert_vector_matches_scalar(model, trace, pool)


# -- engagement counters -------------------------------------------------------


def test_forced_vector_engages_on_eligible_pools(toy_model):
    trace = make_toy_trace(toy_model, n=300)
    s = sim(toy_model, "vector")
    s.simulate(trace, PoolConfiguration.homogeneous("g4dn", 1))
    s.simulate(trace, PoolConfiguration.homogeneous("t3", 4))
    counts = s.dispatch_counts
    assert counts["vector"] == 2
    assert counts["vector_fallback"] == 0


def test_forced_vector_engages_hetero_kernel(toy_model):
    """Forced vector on a mixed-family pool runs the grouped-family
    kernel — no heap fallback — and stays bit-identical to the heap."""
    trace = make_toy_trace(toy_model, n=300)
    pool = PoolConfiguration(("g4dn", "t3"), (2, 2))
    s = sim(toy_model, "vector")
    vec = s.simulate(trace, pool)
    counts = s.dispatch_counts
    assert counts["vector_hetero"] == 1
    assert counts["heap"] == 0
    assert counts["vector"] == 0
    assert counts["vector_fallback"] == 0
    ref = sim(toy_model, "heap").simulate(trace, pool)
    assert_identical(vec, ref, str(pool))
    # The legacy heterogeneous-pool fallback reason is closed for good.
    assert counts["vector_fallback_hetero"] == 0


def test_auto_picks_vector_for_single_instance(toy_model):
    trace = make_toy_trace(toy_model, n=300)  # >= _VECTOR_MIN_QUERIES
    s = sim(toy_model, "auto")
    s.simulate(trace, PoolConfiguration.homogeneous("g4dn", 1))
    assert s.dispatch_counts["vector"] == 1


def test_auto_keeps_scalar_paths_for_small_scalar_regimes(toy_model):
    s = sim(toy_model, "auto")
    tiny = make_toy_trace(toy_model, n=20)  # below the vector crossover
    s.simulate(tiny, PoolConfiguration.homogeneous("g4dn", 1))
    trace = make_toy_trace(toy_model, n=300)
    s.simulate(trace, PoolConfiguration(("g4dn", "t3"), (1, 2)))
    counts = s.dispatch_counts
    assert counts["vector"] == 0
    assert counts["linear"] + counts["heap"] == 2


def test_memo_hits_do_not_count_as_dispatch(toy_model):
    trace = make_toy_trace(toy_model, n=200)
    s = InferenceServingSimulator(
        toy_model, dispatch="vector", result_cache=SimulationResultCache(maxsize=8)
    )
    pool = PoolConfiguration.homogeneous("g4dn", 1)
    s.simulate(trace, pool)
    s.simulate(trace, pool)  # memo hit
    assert s.dispatch_counts["vector"] == 1


def test_dispatch_validation_lists_the_full_policy_set(toy_model):
    with pytest.raises(ValueError) as err:
        InferenceServingSimulator(toy_model, dispatch="quantum")
    for policy in ("auto", "linear", "heap", "vector"):
        assert repr(policy) in str(err.value)


# -- runner plumbing -----------------------------------------------------------


def _scenario():
    return Scenario(
        model="MT-WND",
        workload=WorkloadSpec(n_queries=500, seed=3, load_factor=1.5),
        pool=PoolSpec(families=("g4dn", "c5"), bounds=(3, 4)),
        budget=EvaluationBudget(max_samples=12),
    )


def test_runner_dispatch_validation():
    from repro.api.scenario import ScenarioError

    with pytest.raises(ScenarioError) as err:
        ScenarioRunner(_scenario(), dispatch="warp")
    for policy in ("auto", "linear", "heap", "vector"):
        assert repr(policy) in str(err.value)


def test_runner_reports_dispatch_engagement():
    runner = ScenarioRunner(
        _scenario(),
        dispatch="vector",
        simulation_cache=SimulationResultCache(maxsize=0),
    )
    # The homogeneous scan serves single-family pools only, so under the
    # forced vector policy every one of its simulations runs the kernel.
    runner.homogeneous_optimum(seed=0)
    stats = runner.cache_stats()
    assert set(stats["dispatch"]) == {
        "linear",
        "heap",
        "vector",
        "vector_hetero",
        "vector_fallback",
        "vector_fallback_hetero",
        "vector_fallback_crossover",
        "vector_fallback_tie_screen",
    }
    assert stats["dispatch"]["vector"] > 0
    assert stats["dispatch"]["vector_fallback"] == 0
    assert runner.dispatch_counts() == stats["dispatch"]


def test_runner_vector_search_is_bit_identical():
    """Same scenario, same seed: dispatch="vector" and the scalar default
    must return the same SearchResult, sample for sample."""
    kwargs = dict(simulation_cache=SimulationResultCache(maxsize=0))
    auto = ScenarioRunner(_scenario(), **kwargs).run("ribbon", seed=1)
    vec = ScenarioRunner(_scenario(), dispatch="vector", **kwargs).run(
        "ribbon", seed=1
    )
    assert [r.pool.counts for r in vec.history] == [
        r.pool.counts for r in auto.history
    ]
    assert [r.qos_rate for r in vec.history] == [r.qos_rate for r in auto.history]
    assert vec.best.pool.counts == auto.best.pool.counts
    assert vec.best.cost_per_hour == auto.best.cost_per_hour


# -- golden search sequences ---------------------------------------------------


@pytest.mark.parametrize("seed", [0, 1])
def test_bench_golden_sequence_under_vector_dispatch(seed):
    """The recorded bench-workload goldens (captured on the scalar
    engines) replay exactly under dispatch="vector"."""
    from repro.models.zoo import get_model
    from repro.workload.trace import trace_for_model

    artifact = json.loads(BENCH_JSON.read_text())
    spec, golden = artifact["workload"], artifact["golden"]
    model = get_model(spec["model"])
    trace = trace_for_model(
        model,
        n_queries=spec["n_queries"],
        seed=spec["trace_seed"],
        load_factor=spec["load_factor"],
    )
    space = SearchSpace(tuple(spec["families"]), tuple(spec["bounds"]))
    evaluator = ConfigurationEvaluator(
        model,
        trace,
        RibbonObjective(space),
        result_cache=SimulationResultCache(maxsize=0),
        dispatch="vector",
    )
    res = RibbonOptimizer(max_samples=spec["max_samples"], seed=seed).search(
        evaluator
    )
    expected = golden[str(seed)]
    assert res.best is not None
    assert list(res.best.pool.counts) == expected["best"]
    assert [list(r.pool.counts) for r in res.history] == expected["sequence"]
    # Heterogeneous samples served by the grouped-family kernel, any
    # single-family samples by the homogeneous kernel — all of it
    # dispatched, none of it left to the scalar engines.
    counts = evaluator.simulator.dispatch_counts
    assert (
        counts["vector"] + counts["vector_hetero"] + counts["heap"]
        == evaluator.n_evaluations
    )
    assert counts["vector_hetero"] > 0
