"""Unit + property tests for the workload generation substrate."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.models.zoo import get_model
from repro.workload.arrival import (
    MarkovModulatedPoissonProcess,
    PoissonArrivalProcess,
)
from repro.workload.batch import (
    FixedBatch,
    GaussianBatch,
    HeavyTailLogNormalBatch,
)
from repro.workload.trace import QueryTrace, TraceGenerator, trace_for_model


class TestPoissonArrivals:
    def test_rate_property(self):
        assert PoissonArrivalProcess(100.0).rate_qps == 100.0

    def test_rejects_nonpositive_rate(self):
        with pytest.raises(ValueError):
            PoissonArrivalProcess(0.0)

    def test_sorted_output(self):
        rng = np.random.default_rng(0)
        t = PoissonArrivalProcess(50.0).sample(1000, rng)
        assert np.all(np.diff(t) >= 0)

    def test_empirical_rate_close_to_nominal(self):
        rng = np.random.default_rng(1)
        t = PoissonArrivalProcess(200.0).sample(20_000, rng)
        empirical = len(t) / t[-1]
        assert empirical == pytest.approx(200.0, rel=0.05)

    def test_scaled(self):
        p = PoissonArrivalProcess(100.0).scaled(1.5)
        assert p.rate_qps == pytest.approx(150.0)

    def test_scaled_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            PoissonArrivalProcess(100.0).scaled(0.0)

    def test_negative_n_rejected(self):
        with pytest.raises(ValueError):
            PoissonArrivalProcess(100.0).sample(-1, np.random.default_rng(0))


class TestMMPP:
    def test_long_run_rate_is_time_weighted_mixture(self):
        p = MarkovModulatedPoissonProcess(100.0, 300.0, mean_base_s=3.0, mean_burst_s=1.0)
        assert p.rate_qps == pytest.approx((100 * 3 + 300 * 1) / 4)

    def test_sorted_output(self):
        p = MarkovModulatedPoissonProcess(50.0, 200.0)
        t = p.sample(2000, np.random.default_rng(2))
        assert np.all(np.diff(t) >= 0)

    def test_burst_must_exceed_base(self):
        with pytest.raises(ValueError):
            MarkovModulatedPoissonProcess(100.0, 50.0)

    def test_scaled_scales_both_rates(self):
        p = MarkovModulatedPoissonProcess(100.0, 200.0).scaled(2.0)
        assert p.rate_qps == pytest.approx(
            MarkovModulatedPoissonProcess(200.0, 400.0).rate_qps
        )


class TestBatchDistributions:
    def test_lognormal_sample_bounds(self):
        d = HeavyTailLogNormalBatch(30.0, 0.8, 256)
        b = d.sample(5000, np.random.default_rng(0))
        assert b.min() >= 1
        assert b.max() <= 256
        assert b.dtype == np.int64

    def test_lognormal_mean_formula(self):
        d = HeavyTailLogNormalBatch(30.0, 0.8, 256)
        assert d.mean_batch == pytest.approx(30.0 * np.exp(0.32))

    def test_lognormal_tail_probability_matches_empirical(self):
        d = HeavyTailLogNormalBatch(30.0, 0.8, 100_000)
        raw = d._raw_sample(200_000, np.random.default_rng(3))
        emp = float(np.mean(raw > 150.0))
        assert d.tail_probability(150.0) == pytest.approx(emp, abs=5e-3)

    def test_lognormal_percentile_median(self):
        d = HeavyTailLogNormalBatch(30.0, 0.8, 256)
        assert d.percentile(50.0) == pytest.approx(30.0)

    def test_lognormal_rejects_bad_params(self):
        with pytest.raises(ValueError):
            HeavyTailLogNormalBatch(0.0, 0.8, 256)
        with pytest.raises(ValueError):
            HeavyTailLogNormalBatch(30.0, 0.0, 256)
        with pytest.raises(ValueError):
            HeavyTailLogNormalBatch(30.0, 0.8, 0)

    def test_gaussian_clipping(self):
        d = GaussianBatch(10.0, 50.0, 64)
        b = d.sample(5000, np.random.default_rng(1))
        assert b.min() >= 1
        assert b.max() <= 64

    def test_gaussian_rejects_bad_params(self):
        with pytest.raises(ValueError):
            GaussianBatch(0.0, 1.0, 64)
        with pytest.raises(ValueError):
            GaussianBatch(10.0, -1.0, 64)

    def test_fixed_batch_constant(self):
        d = FixedBatch(32)
        b = d.sample(100, np.random.default_rng(0))
        assert np.all(b == 32)
        assert d.mean_batch == 32.0

    def test_fixed_batch_above_cap_rejected(self):
        with pytest.raises(ValueError):
            FixedBatch(100, max_batch=64)

    @given(st.integers(min_value=0, max_value=200))
    @settings(max_examples=25, deadline=None)
    def test_sample_count_matches_request(self, n):
        d = HeavyTailLogNormalBatch(16.0, 0.8, 128)
        assert len(d.sample(n, np.random.default_rng(0))) == n


class TestQueryTrace:
    def test_validation_sorted(self):
        with pytest.raises(ValueError, match="sorted"):
            QueryTrace(np.array([1.0, 0.5]), np.array([1, 1]), 10.0)

    def test_validation_shapes(self):
        with pytest.raises(ValueError, match="mismatch"):
            QueryTrace(np.array([0.1, 0.2]), np.array([1]), 10.0)

    def test_validation_batch_min(self):
        with pytest.raises(ValueError, match=">= 1"):
            QueryTrace(np.array([0.1]), np.array([0]), 10.0)

    def test_duration_and_rate(self):
        t = QueryTrace(np.array([0.0, 1.0, 2.0]), np.array([1, 2, 3]), 1.5)
        assert t.duration_s == 2.0
        assert t.empirical_rate_qps == pytest.approx(1.5)

    def test_head(self):
        t = QueryTrace(np.array([0.0, 1.0, 2.0]), np.array([1, 2, 3]), 1.5)
        h = t.head(2)
        assert len(h) == 2
        assert h.batch_sizes.tolist() == [1, 2]

    def test_roundtrip_serialization(self):
        t = QueryTrace(np.array([0.5, 1.0]), np.array([4, 8]), 2.0, seed=42)
        t2 = QueryTrace.from_dict(t.to_dict())
        np.testing.assert_allclose(t2.arrival_s, t.arrival_s)
        np.testing.assert_array_equal(t2.batch_sizes, t.batch_sizes)
        assert t2.seed == 42


class TestTraceGenerator:
    def test_deterministic_given_seed(self):
        gen = TraceGenerator(
            PoissonArrivalProcess(100.0),
            HeavyTailLogNormalBatch(30.0, 0.8, 256),
            seed=5,
        )
        a, b = gen.generate(200), gen.generate(200)
        np.testing.assert_allclose(a.arrival_s, b.arrival_s)
        np.testing.assert_array_equal(a.batch_sizes, b.batch_sizes)

    def test_seed_override_changes_trace(self):
        gen = TraceGenerator(
            PoissonArrivalProcess(100.0),
            HeavyTailLogNormalBatch(30.0, 0.8, 256),
            seed=5,
        )
        a, b = gen.generate(200), gen.generate(200, seed=6)
        assert not np.array_equal(a.batch_sizes, b.batch_sizes)

    def test_scaled_raises_rate(self):
        gen = TraceGenerator(
            PoissonArrivalProcess(100.0),
            HeavyTailLogNormalBatch(30.0, 0.8, 256),
            seed=5,
        ).scaled(1.5)
        t = gen.generate(5000)
        assert t.rate_qps == pytest.approx(150.0)
        assert t.empirical_rate_qps == pytest.approx(150.0, rel=0.1)


class TestTraceForModel:
    def test_default_follows_model_settings(self):
        m = get_model("MT-WND")
        t = trace_for_model(m, n_queries=500, seed=0)
        assert len(t) == 500
        assert t.rate_qps == m.arrival_rate_qps
        assert t.batch_sizes.max() <= m.max_batch

    def test_gaussian_variant_mean_matches_lognormal(self):
        m = get_model("MT-WND")
        t_ln = trace_for_model(m, n_queries=20_000, seed=0)
        t_g = trace_for_model(m, n_queries=20_000, seed=0, gaussian=True)
        assert np.mean(t_g.batch_sizes) == pytest.approx(
            np.mean(t_ln.batch_sizes), rel=0.15
        )

    def test_load_factor(self):
        m = get_model("MT-WND")
        t = trace_for_model(m, n_queries=500, seed=0, load_factor=1.5)
        assert t.rate_qps == pytest.approx(m.arrival_rate_qps * 1.5)

    def test_rejects_bad_load_factor(self):
        with pytest.raises(ValueError):
            trace_for_model(get_model("MT-WND"), load_factor=0.0)
